//! Ternary wildcard cubes over the canonical header bits.
//!
//! A [`Cube`] assigns each of the [`HEADER_BITS`] header bits one of three
//! values: `0`, `1` or `*` (don't care). It therefore describes a
//! rectangular set ("cube") of concrete headers. Cubes are the building block
//! of [`HeaderSpace`](crate::HeaderSpace) (unions of cubes) and of rule match
//! expressions.
//!
//! Internally a cube is a pair of bitmasks: `care` (1 = the bit is fixed) and
//! `value` (the required value where `care` is 1, always 0 where `care` is 0
//! so equality of cubes is structural equality of the masks).

use std::fmt;

use serde::{Deserialize, Serialize};

use rvaas_types::{Field, Header, HEADER_BITS};

/// Number of 64-bit words needed to hold one bit per header bit.
pub(crate) const WORDS: usize = HEADER_BITS.div_ceil(64);

/// Mask of valid bits in the last word.
fn last_word_mask() -> u64 {
    let rem = HEADER_BITS % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// A ternary (0/1/*) wildcard expression over the canonical header layout.
///
/// The `Ord` implementation is the structural order of the `(care, value)`
/// masks — meaningless semantically, but it lets cubes key ordered maps
/// (the snapshot's flow-table index relies on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cube {
    care: [u64; WORDS],
    value: [u64; WORDS],
}

impl Default for Cube {
    fn default() -> Self {
        Cube::wildcard()
    }
}

impl Cube {
    /// The cube matching every header (`*` in every bit).
    #[must_use]
    pub fn wildcard() -> Self {
        Cube {
            care: [0; WORDS],
            value: [0; WORDS],
        }
    }

    /// The cube matching exactly one concrete header.
    #[must_use]
    pub fn exact(header: &Header) -> Self {
        let mut cube = Cube {
            care: [u64::MAX; WORDS],
            value: [0; WORDS],
        };
        cube.care[WORDS - 1] &= last_word_mask();
        for (i, bit) in header.to_bits().iter().enumerate() {
            if *bit {
                cube.value[i / 64] |= 1u64 << (i % 64);
            }
        }
        cube
    }

    /// Returns the bit at position `i`: `None` means `*`, otherwise the value.
    #[must_use]
    pub fn bit(&self, i: usize) -> Option<bool> {
        debug_assert!(i < HEADER_BITS);
        let (w, b) = (i / 64, i % 64);
        if self.care[w] >> b & 1 == 1 {
            Some(self.value[w] >> b & 1 == 1)
        } else {
            None
        }
    }

    /// Sets bit `i` to a fixed value.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        debug_assert!(i < HEADER_BITS);
        let (w, b) = (i / 64, i % 64);
        self.care[w] |= 1u64 << b;
        if value {
            self.value[w] |= 1u64 << b;
        } else {
            self.value[w] &= !(1u64 << b);
        }
    }

    /// Sets bit `i` back to `*`.
    pub fn clear_bit(&mut self, i: usize) {
        debug_assert!(i < HEADER_BITS);
        let (w, b) = (i / 64, i % 64);
        self.care[w] &= !(1u64 << b);
        self.value[w] &= !(1u64 << b);
    }

    /// Constrains `field` to exactly `value` (builder style).
    #[must_use]
    pub fn with_field(mut self, field: Field, value: u64) -> Self {
        self.constrain_field(field, value);
        self
    }

    /// Constrains the top `prefix_len` bits of `field` (prefix match, e.g.
    /// an IPv4 `/24`). `prefix_len` is clamped to the field width.
    #[must_use]
    pub fn with_field_prefix(mut self, field: Field, value: u64, prefix_len: usize) -> Self {
        let spec = field.spec();
        let plen = prefix_len.min(spec.width);
        // The prefix covers the *most significant* `plen` bits of the field.
        for i in 0..plen {
            let bit_in_field = spec.width - 1 - i;
            let bit_value = (value >> bit_in_field) & 1 == 1;
            self.set_bit(spec.offset + bit_in_field, bit_value);
        }
        self
    }

    /// Constrains `field` to exactly `value` in place.
    pub fn constrain_field(&mut self, field: Field, value: u64) {
        let spec = field.spec();
        for i in 0..spec.width {
            self.set_bit(spec.offset + i, (value >> i) & 1 == 1);
        }
    }

    /// Returns `Some(v)` if `field` is fully specified with value `v`,
    /// `None` if any of its bits is a wildcard.
    #[must_use]
    pub fn field_exact(&self, field: Field) -> Option<u64> {
        let spec = field.spec();
        let mut out = 0u64;
        for i in 0..spec.width {
            match self.bit(spec.offset + i) {
                Some(true) => out |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(out)
    }

    /// True if the concrete header is contained in the cube.
    #[must_use]
    pub fn contains(&self, header: &Header) -> bool {
        let exact = Cube::exact(header);
        for w in 0..WORDS {
            if (exact.value[w] ^ self.value[w]) & self.care[w] != 0 {
                return false;
            }
        }
        true
    }

    /// Intersection of two cubes, or `None` if they are disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let mut out = Cube::wildcard();
        for w in 0..WORDS {
            // Conflict where both care and disagree.
            if (self.value[w] ^ other.value[w]) & (self.care[w] & other.care[w]) != 0 {
                return None;
            }
            out.care[w] = self.care[w] | other.care[w];
            out.value[w] = (self.value[w] & self.care[w]) | (other.value[w] & other.care[w]);
        }
        Some(out)
    }

    /// The overlap test used by incremental model updates: returns the
    /// header region covered by *both* cubes — the region whose forwarding
    /// behaviour is affected when a rule matching `other` is inserted above
    /// or removed from under a rule matching `self` — or `None` when the
    /// cubes are disjoint (the change cannot affect this rule's traffic).
    #[must_use]
    pub fn overlap_region(&self, other: &Cube) -> Option<Cube> {
        self.intersect(other)
    }

    /// True if the two cubes share at least one concrete header.
    #[must_use]
    pub fn overlaps(&self, other: &Cube) -> bool {
        for w in 0..WORDS {
            if (self.value[w] ^ other.value[w]) & (self.care[w] & other.care[w]) != 0 {
                return false;
            }
        }
        true
    }

    /// True if every header in `self` is also in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Cube) -> bool {
        for w in 0..WORDS {
            // `other` must not care about bits `self` leaves free…
            if other.care[w] & !self.care[w] != 0 {
                return false;
            }
            // …and must agree wherever it cares.
            if (self.value[w] ^ other.value[w]) & other.care[w] != 0 {
                return false;
            }
        }
        true
    }

    /// Complement of the cube as a list of disjoint cubes (one per fixed bit).
    #[must_use]
    pub fn complement(&self) -> Vec<Cube> {
        let mut out = Vec::new();
        // The classic construction: for the i-th fixed bit, emit a cube that
        // agrees with `self` on all earlier fixed bits and differs on bit i;
        // this yields *disjoint* cubes covering everything outside `self`.
        let mut prefix = Cube::wildcard();
        for i in 0..HEADER_BITS {
            if let Some(v) = self.bit(i) {
                let mut c = prefix;
                c.set_bit(i, !v);
                out.push(c);
                prefix.set_bit(i, v);
            }
        }
        out
    }

    /// `self` minus `other`, as a list of disjoint cubes.
    #[must_use]
    pub fn subtract(&self, other: &Cube) -> Vec<Cube> {
        if !self.overlaps(other) {
            return vec![*self];
        }
        if self.is_subset_of(other) {
            return Vec::new();
        }
        other
            .complement()
            .iter()
            .filter_map(|c| self.intersect(c))
            .collect()
    }

    /// Number of wildcard (free) bits; `2^free_bits()` is the cube's size.
    #[must_use]
    pub fn free_bits(&self) -> u32 {
        let mut fixed = 0;
        for w in 0..WORDS {
            let mask = if w == WORDS - 1 {
                last_word_mask()
            } else {
                u64::MAX
            };
            fixed += (self.care[w] & mask).count_ones();
        }
        HEADER_BITS as u32 - fixed
    }

    /// Applies a rewrite: bits selected by `mask_cube`'s fixed bits are set to
    /// `mask_cube`'s values (this is how OpenFlow set-field actions transform
    /// a header space).
    #[must_use]
    pub fn rewrite(&self, mask_cube: &Cube) -> Cube {
        let mut out = *self;
        for w in 0..WORDS {
            out.care[w] |= mask_cube.care[w];
            out.value[w] =
                (out.value[w] & !mask_cube.care[w]) | (mask_cube.value[w] & mask_cube.care[w]);
        }
        out
    }

    /// Picks an arbitrary concrete header contained in the cube (wildcard
    /// bits become 0).
    #[must_use]
    pub fn sample(&self) -> Header {
        let mut bits = vec![false; HEADER_BITS];
        for (i, bit) in bits.iter_mut().enumerate() {
            *bit = self.bit(i) == Some(true);
        }
        Header::from_bits(&bits)
    }
}

impl From<&Header> for Cube {
    fn from(h: &Header) -> Self {
        Cube::exact(h)
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Field-wise display; wildcard fields are omitted.
        let mut first = true;
        for field in Field::ALL {
            let spec = field.spec();
            let all_free = (0..spec.width).all(|i| self.bit(spec.offset + i).is_none());
            if all_free {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match self.field_exact(field) {
                Some(v) => write!(f, "{field}={v:#x}")?,
                None => {
                    write!(f, "{field}=")?;
                    for i in (0..spec.width).rev() {
                        match self.bit(spec.offset + i) {
                            Some(true) => write!(f, "1")?,
                            Some(false) => write!(f, "0")?,
                            None => write!(f, "*")?,
                        }
                    }
                }
            }
        }
        if first {
            write!(f, "*")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rvaas_types::Field;

    fn header(dst: u32, port: u16) -> Header {
        Header::builder().ip_src(1).ip_dst(dst).l4_dst(port).build()
    }

    #[test]
    fn wildcard_contains_everything() {
        let w = Cube::wildcard();
        assert!(w.contains(&header(0, 0)));
        assert!(w.contains(&header(u32::MAX, u16::MAX)));
        assert_eq!(w.free_bits(), HEADER_BITS as u32);
    }

    #[test]
    fn exact_contains_only_itself() {
        let h = header(0x0a000001, 80);
        let c = Cube::exact(&h);
        assert!(c.contains(&h));
        assert!(!c.contains(&header(0x0a000002, 80)));
        assert_eq!(c.free_bits(), 0);
        assert_eq!(c.sample(), h);
    }

    #[test]
    fn field_constraint_matches_field_values() {
        let c = Cube::wildcard().with_field(Field::IpDst, 0x0a000001);
        assert!(c.contains(&header(0x0a000001, 80)));
        assert!(c.contains(&header(0x0a000001, 443)));
        assert!(!c.contains(&header(0x0a000002, 80)));
        assert_eq!(c.field_exact(Field::IpDst), Some(0x0a000001));
        assert_eq!(c.field_exact(Field::L4Dst), None);
    }

    #[test]
    fn prefix_constraint_matches_prefix() {
        let c = Cube::wildcard().with_field_prefix(Field::IpDst, 0x0a000000, 24);
        assert!(c.contains(&header(0x0a000001, 80)));
        assert!(c.contains(&header(0x0a0000ff, 80)));
        assert!(!c.contains(&header(0x0a000100, 80)));
        assert_eq!(c.free_bits(), HEADER_BITS as u32 - 24);
    }

    #[test]
    fn prefix_zero_length_is_wildcard_for_field() {
        let c = Cube::wildcard().with_field_prefix(Field::IpDst, 0x0a000000, 0);
        assert_eq!(c, Cube::wildcard());
    }

    #[test]
    fn intersect_disjoint_returns_none() {
        let a = Cube::wildcard().with_field(Field::IpDst, 1);
        let b = Cube::wildcard().with_field(Field::IpDst, 2);
        assert_eq!(a.intersect(&b), None);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn overlap_region_reports_affected_headers() {
        let rule = Cube::wildcard().with_field(Field::IpDst, 7);
        let change = Cube::wildcard().with_field(Field::IpSrc, 3);
        let region = rule.overlap_region(&change).expect("overlapping");
        assert_eq!(region.field_exact(Field::IpDst), Some(7));
        assert_eq!(region.field_exact(Field::IpSrc), Some(3));
        // Disjoint cubes affect nothing.
        let other = Cube::wildcard().with_field(Field::IpDst, 8);
        assert_eq!(rule.overlap_region(&other), None);
    }

    #[test]
    fn intersect_combines_constraints() {
        let a = Cube::wildcard().with_field(Field::IpDst, 7);
        let b = Cube::wildcard().with_field(Field::L4Dst, 80);
        let c = a.intersect(&b).expect("compatible");
        assert_eq!(c.field_exact(Field::IpDst), Some(7));
        assert_eq!(c.field_exact(Field::L4Dst), Some(80));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn subset_relation() {
        let narrow = Cube::wildcard()
            .with_field(Field::IpDst, 7)
            .with_field(Field::L4Dst, 80);
        let wide = Cube::wildcard().with_field(Field::IpDst, 7);
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
        assert!(wide.is_subset_of(&Cube::wildcard()));
        assert!(narrow.is_subset_of(&narrow));
    }

    #[test]
    fn complement_covers_everything_but_the_cube() {
        let c = Cube::wildcard().with_field(Field::IpProto, 17);
        let comp = c.complement();
        assert_eq!(comp.len(), 8); // one cube per fixed bit
        let inside = header(1, 1); // builder sets proto 0 by default
        let mut h_in = inside;
        h_in.ip_proto = 17;
        assert!(comp.iter().all(|k| !k.contains(&h_in)));
        let mut h_out = inside;
        h_out.ip_proto = 16;
        assert!(comp.iter().any(|k| k.contains(&h_out)));
        // Complement cubes are pairwise disjoint.
        for i in 0..comp.len() {
            for j in i + 1..comp.len() {
                assert!(!comp[i].overlaps(&comp[j]), "cubes {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let a = Cube::wildcard().with_field(Field::IpDst, 1);
        let b = Cube::wildcard().with_field(Field::IpDst, 2);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_superset_is_empty() {
        let a = Cube::wildcard().with_field(Field::IpDst, 1);
        assert!(a.subtract(&Cube::wildcard()).is_empty());
    }

    #[test]
    fn subtract_partial_overlap() {
        let all = Cube::wildcard();
        let udp = Cube::wildcard().with_field(Field::IpProto, 17);
        let rest = all.subtract(&udp);
        let mut h_udp = header(1, 1);
        h_udp.ip_proto = 17;
        let mut h_tcp = header(1, 1);
        h_tcp.ip_proto = 6;
        assert!(rest.iter().all(|c| !c.contains(&h_udp)));
        assert!(rest.iter().any(|c| c.contains(&h_tcp)));
    }

    #[test]
    fn rewrite_sets_selected_bits() {
        let input = Cube::wildcard().with_field(Field::IpDst, 5);
        let rewrite = Cube::wildcard().with_field(Field::Vlan, 100);
        let out = input.rewrite(&rewrite);
        assert_eq!(out.field_exact(Field::IpDst), Some(5));
        assert_eq!(out.field_exact(Field::Vlan), Some(100));
        // Rewriting an already-constrained field replaces the value.
        let re2 = Cube::wildcard().with_field(Field::IpDst, 9);
        assert_eq!(input.rewrite(&re2).field_exact(Field::IpDst), Some(9));
    }

    #[test]
    fn display_shows_constrained_fields_only() {
        assert_eq!(Cube::wildcard().to_string(), "*");
        let c = Cube::wildcard().with_field(Field::L4Dst, 80);
        assert_eq!(c.to_string(), "l4_dst=0x50");
        let p = Cube::wildcard().with_field_prefix(Field::Vlan, 0x800, 1);
        assert!(p.to_string().starts_with("vlan=1"));
    }

    #[test]
    fn set_clear_bit_roundtrip() {
        let mut c = Cube::wildcard();
        c.set_bit(5, true);
        assert_eq!(c.bit(5), Some(true));
        c.set_bit(5, false);
        assert_eq!(c.bit(5), Some(false));
        c.clear_bit(5);
        assert_eq!(c.bit(5), None);
        assert_eq!(c, Cube::wildcard());
    }

    fn arb_header() -> impl Strategy<Value = Header> {
        (
            any::<u16>(),
            0u16..4096,
            any::<u32>(),
            any::<u32>(),
            any::<u8>(),
            any::<u16>(),
            any::<u16>(),
        )
            .prop_map(|(e, v, s, d, p, sp, dp)| Header {
                eth_type: e,
                vlan: v,
                ip_src: s,
                ip_dst: d,
                ip_proto: p,
                l4_src: sp,
                l4_dst: dp,
            })
    }

    proptest! {
        #[test]
        fn prop_exact_cube_contains_its_header(h in arb_header()) {
            prop_assert!(Cube::exact(&h).contains(&h));
        }

        #[test]
        fn prop_intersection_symmetric_and_sound(h in arb_header(), dst in any::<u32>(), port in any::<u16>()) {
            let a = Cube::wildcard().with_field(Field::IpDst, u64::from(dst));
            let b = Cube::wildcard().with_field(Field::L4Dst, u64::from(port));
            let ab = a.intersect(&b);
            let ba = b.intersect(&a);
            prop_assert_eq!(ab, ba);
            if let Some(c) = ab {
                // Membership in the intersection equals membership in both.
                prop_assert_eq!(c.contains(&h), a.contains(&h) && b.contains(&h));
            }
        }

        #[test]
        fn prop_complement_partitions_membership(h in arb_header(), proto in any::<u8>()) {
            let c = Cube::wildcard().with_field(Field::IpProto, u64::from(proto));
            let comp = c.complement();
            let in_cube = c.contains(&h);
            let in_comp = comp.iter().any(|k| k.contains(&h));
            prop_assert_eq!(in_cube, !in_comp);
        }

        #[test]
        fn prop_subtract_semantics(h in arb_header(), a_dst in any::<u32>(), b_port in any::<u16>()) {
            let a = Cube::wildcard().with_field(Field::IpDst, u64::from(a_dst));
            let b = Cube::wildcard().with_field(Field::L4Dst, u64::from(b_port));
            let diff = a.subtract(&b);
            let in_diff = diff.iter().any(|c| c.contains(&h));
            prop_assert_eq!(in_diff, a.contains(&h) && !b.contains(&h));
        }

        #[test]
        fn prop_subset_implies_containment(h in arb_header(), dst in any::<u32>()) {
            let narrow = Cube::exact(&h);
            let wide = Cube::wildcard().with_field(Field::IpDst, u64::from(dst));
            if narrow.is_subset_of(&wide) {
                prop_assert!(wide.contains(&h));
            }
        }
    }
}
