//! Reachability and trajectory analysis over a [`NetworkFunction`].
//!
//! Given an injection point (an edge port) and an initial header space, the
//! engine propagates the space through switch transfer functions and internal
//! links, producing:
//!
//! * every **edge port** the traffic can exit through, with the exact header
//!   space that reaches it and the switch-level path taken (one
//!   [`ReachedEndpoint`] per distinct path);
//! * every point where traffic is **delivered to the controller**;
//! * **loop reports** for traffic that revisits a switch it has already
//!   traversed with an overlapping header space.
//!
//! This is the engine RVaaS uses for its logical verification step: isolation
//! queries look at which edge ports are reached, geo queries look at the
//! switches on the paths, and avoidance queries check that a given space
//! reaches *no* endpoint outside an allowed set.

use serde::{Deserialize, Serialize};

use rvaas_types::{PortId, SwitchId, SwitchPort};

use crate::space::HeaderSpace;
use crate::transfer::NetworkFunction;

/// Tunables bounding the reachability computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachabilityOptions {
    /// Maximum number of switch traversals along a single path before the
    /// branch is cut (guards against state explosion in pathological rule
    /// sets; loops are reported separately).
    pub max_hops: usize,
    /// Maximum number of cubes a propagated header space may hold before the
    /// branch is cut and counted in [`ReachabilityResult::truncated_branches`].
    pub max_cubes: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_hops: 64,
            max_cubes: 4096,
        }
    }
}

/// Traffic that can leave the network at an edge port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReachedEndpoint {
    /// The edge port the traffic exits through.
    pub egress: SwitchPort,
    /// The header space that reaches the port along this path.
    pub space: HeaderSpace,
    /// Switches traversed, in order (including the egress switch).
    pub path: Vec<SwitchId>,
}

impl ReachedEndpoint {
    /// Number of switches traversed.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.path.len()
    }
}

/// Traffic delivered to the controller (Packet-In) during propagation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerDelivery {
    /// Switch that punts the traffic.
    pub switch: SwitchId,
    /// Header space delivered to the controller.
    pub space: HeaderSpace,
    /// Path taken up to and including the punting switch.
    pub path: Vec<SwitchId>,
}

/// A forwarding loop detected during propagation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Switch that is visited twice.
    pub switch: SwitchId,
    /// Path from injection up to the repeated visit.
    pub path: Vec<SwitchId>,
    /// Header space still alive when the loop was closed.
    pub space: HeaderSpace,
}

/// The full result of a reachability computation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReachabilityResult {
    /// Edge ports reached (one entry per distinct path).
    pub endpoints: Vec<ReachedEndpoint>,
    /// Controller deliveries.
    pub to_controller: Vec<ControllerDelivery>,
    /// Detected forwarding loops.
    pub loops: Vec<LoopReport>,
    /// Number of branches cut due to `max_hops` / `max_cubes` limits.
    pub truncated_branches: usize,
    /// Every switch the traversal touched, sorted and de-duplicated. Unlike
    /// [`traversed_switches`](Self::traversed_switches) this includes switches
    /// where all traffic was dropped or punted — the full *footprint* of the
    /// computation, i.e. the set of switches whose rules the result depends
    /// on. (A rule change on any other switch cannot alter this result,
    /// except through `truncated_branches`.)
    pub visited: Vec<SwitchId>,
}

impl ReachabilityResult {
    /// Distinct egress ports reached, de-duplicated.
    #[must_use]
    pub fn reached_ports(&self) -> Vec<SwitchPort> {
        let mut ports: Vec<SwitchPort> = self.endpoints.iter().map(|e| e.egress).collect();
        ports.sort();
        ports.dedup();
        ports
    }

    /// All switches that appear on any path (for geo-location queries).
    #[must_use]
    pub fn traversed_switches(&self) -> Vec<SwitchId> {
        let mut switches: Vec<SwitchId> = self
            .endpoints
            .iter()
            .flat_map(|e| e.path.iter().copied())
            .chain(self.loops.iter().flat_map(|l| l.path.iter().copied()))
            .chain(
                self.to_controller
                    .iter()
                    .flat_map(|c| c.path.iter().copied()),
            )
            .collect();
        switches.sort();
        switches.dedup();
        switches
    }

    /// Length of the shortest and longest path to any endpoint, if reachable.
    #[must_use]
    pub fn path_length_bounds(&self) -> Option<(usize, usize)> {
        let lengths: Vec<usize> = self
            .endpoints
            .iter()
            .map(ReachedEndpoint::hop_count)
            .collect();
        let min = lengths.iter().copied().min()?;
        let max = lengths.iter().copied().max()?;
        Some((min, max))
    }

    /// The combined header space that can reach a given egress port.
    #[must_use]
    pub fn space_reaching(&self, port: SwitchPort) -> HeaderSpace {
        self.endpoints
            .iter()
            .filter(|e| e.egress == port)
            .fold(HeaderSpace::empty(), |acc, e| acc.union(&e.space))
    }
}

/// The reachability engine; borrows a [`NetworkFunction`] snapshot.
#[derive(Debug, Clone)]
pub struct ReachabilityEngine<'a> {
    network: &'a NetworkFunction,
    options: ReachabilityOptions,
}

struct WorkItem {
    switch: SwitchId,
    in_port: PortId,
    space: HeaderSpace,
    path: Vec<SwitchId>,
}

impl<'a> ReachabilityEngine<'a> {
    /// Creates an engine over `network` with default options.
    #[must_use]
    pub fn new(network: &'a NetworkFunction) -> Self {
        ReachabilityEngine {
            network,
            options: ReachabilityOptions::default(),
        }
    }

    /// Creates an engine with explicit options.
    #[must_use]
    pub fn with_options(network: &'a NetworkFunction, options: ReachabilityOptions) -> Self {
        ReachabilityEngine { network, options }
    }

    /// Computes everything reachable from traffic injected at edge port
    /// `ingress` with headers in `space`.
    #[must_use]
    pub fn reachable_from(&self, ingress: SwitchPort, space: HeaderSpace) -> ReachabilityResult {
        let mut result = ReachabilityResult::default();
        if space.is_empty() {
            return result;
        }
        let mut queue = vec![WorkItem {
            switch: ingress.switch,
            in_port: ingress.port,
            space,
            path: Vec::new(),
        }];

        while let Some(item) = queue.pop() {
            // Footprint bookkeeping: every switch traffic arrives at is part
            // of the result's dependency set, even when it drops or truncates
            // everything.
            result.visited.push(item.switch);
            if item.path.len() >= self.options.max_hops
                || item.space.cube_count() > self.options.max_cubes
            {
                result.truncated_branches += 1;
                continue;
            }
            // Loop detection: a switch revisited along the same path.
            if item.path.contains(&item.switch) {
                result.loops.push(LoopReport {
                    switch: item.switch,
                    path: item.path.clone(),
                    space: item.space.clone(),
                });
                continue;
            }
            let Some(transfer) = self.network.transfer(item.switch) else {
                // Unknown switch: treat as dropping everything.
                continue;
            };
            let mut path = item.path.clone();
            path.push(item.switch);

            for out in transfer.apply(item.in_port, &item.space) {
                if out.space.is_empty() {
                    continue;
                }
                if out.to_controller {
                    result.to_controller.push(ControllerDelivery {
                        switch: item.switch,
                        space: out.space,
                        path: path.clone(),
                    });
                    continue;
                }
                let Some(out_port) = out.out_port else {
                    // Dropped traffic: nothing to record for reachability.
                    continue;
                };
                let egress = SwitchPort::new(item.switch, out_port);
                match self.network.link_peer(egress) {
                    Some(peer) => queue.push(WorkItem {
                        switch: peer.switch,
                        in_port: peer.port,
                        space: out.space,
                        path: path.clone(),
                    }),
                    None => result.endpoints.push(ReachedEndpoint {
                        egress,
                        space: out.space,
                        path: path.clone(),
                    }),
                }
            }
        }
        result.visited.sort();
        result.visited.dedup();
        result
    }

    /// Convenience: the set of edge ports reachable from `ingress` for any
    /// header in `space`.
    #[must_use]
    pub fn reachable_edge_ports(&self, ingress: SwitchPort, space: HeaderSpace) -> Vec<SwitchPort> {
        self.reachable_from(ingress, space).reached_ports()
    }

    /// Computes which ingress edge ports can deliver traffic *to* the given
    /// egress port (the "which sources can reach me" query), by running the
    /// forward analysis from every other edge port.
    #[must_use]
    pub fn sources_reaching(&self, egress: SwitchPort, space: &HeaderSpace) -> Vec<SwitchPort> {
        let mut sources = Vec::new();
        for ingress in self.network.all_edge_ports() {
            if ingress == egress {
                continue;
            }
            let result = self.reachable_from(ingress, space.clone());
            if result
                .endpoints
                .iter()
                .any(|e| e.egress == egress && !e.space.is_empty())
            {
                sources.push(ingress);
            }
        }
        sources.sort();
        sources
    }
}

/// True when two network functions are *reachability-equivalent*: injecting
/// the full header space at every edge port of either function reaches the
/// same egress ports carrying the same header sets. Spaces are compared
/// semantically (mutual subtraction), not representationally, so differently
/// factored but equal unions of cubes compare equal.
///
/// This is the oracle behind the incremental-model property tests: a network
/// function updated rule-by-rule in place must stay equivalent to one rebuilt
/// from scratch.
#[must_use]
pub fn reachability_equivalent(a: &NetworkFunction, b: &NetworkFunction) -> bool {
    let mut ports_a = a.all_edge_ports();
    let mut ports_b = b.all_edge_ports();
    ports_a.sort();
    ports_b.sort();
    if ports_a != ports_b {
        return false;
    }
    let engine_a = ReachabilityEngine::new(a);
    let engine_b = ReachabilityEngine::new(b);
    for ingress in ports_a {
        let result_a = engine_a.reachable_from(ingress, HeaderSpace::all());
        let result_b = engine_b.reachable_from(ingress, HeaderSpace::all());
        if result_a.reached_ports() != result_b.reached_ports() {
            return false;
        }
        for port in result_a.reached_ports() {
            let space_a = result_a.space_reaching(port);
            let space_b = result_b.space_reaching(port);
            if !space_a.subtract(&space_b).is_empty() || !space_b.subtract(&space_a).is_empty() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;
    use crate::transfer::{RuleAction, RuleTransfer, SwitchTransfer};
    use rvaas_types::{Field, Header};

    fn dst_match(dst: u32) -> Cube {
        Cube::wildcard().with_field(Field::IpDst, u64::from(dst))
    }

    fn sp(s: u32, p: u32) -> SwitchPort {
        SwitchPort::new(SwitchId(s), PortId(p))
    }

    /// Builds a 3-switch line: h1 -- s1 -- s2 -- s3 -- h2
    /// Port 1 of s1 and port 2 of s3 are edge ports.
    /// All switches forward dst=2 towards s3 and dst=1 towards s1.
    fn line_network() -> NetworkFunction {
        let mut nf = NetworkFunction::new();
        for s in 1..=3u32 {
            nf.declare_switch(SwitchId(s), [PortId(1), PortId(2)]);
        }
        nf.connect(sp(1, 2), sp(2, 1));
        nf.connect(sp(2, 2), sp(3, 1));
        for s in 1..=3u32 {
            nf.set_transfer(
                SwitchId(s),
                SwitchTransfer::from_rules([
                    RuleTransfer::new(10, dst_match(2), RuleAction::forward(PortId(2))),
                    RuleTransfer::new(10, dst_match(1), RuleAction::forward(PortId(1))),
                ]),
            );
        }
        nf
    }

    #[test]
    fn line_reachability_end_to_end() {
        let nf = line_network();
        let engine = ReachabilityEngine::new(&nf);
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::all());
        // Traffic to dst=2 exits at s3:p2; traffic to dst=1 bounces straight
        // back out of s1:p1.
        let ports = result.reached_ports();
        assert!(ports.contains(&sp(3, 2)), "ports: {ports:?}");
        assert!(ports.contains(&sp(1, 1)), "ports: {ports:?}");
        let to_h2 = result.space_reaching(sp(3, 2));
        assert!(to_h2.contains(&Header::builder().ip_dst(2).build()));
        assert!(!to_h2.contains(&Header::builder().ip_dst(1).build()));
        // The path to h2 is s1 -> s2 -> s3.
        let ep = result
            .endpoints
            .iter()
            .find(|e| e.egress == sp(3, 2))
            .unwrap();
        assert_eq!(ep.path, vec![SwitchId(1), SwitchId(2), SwitchId(3)]);
        assert_eq!(ep.hop_count(), 3);
        assert!(result.loops.is_empty());
        assert_eq!(result.truncated_branches, 0);
    }

    #[test]
    fn unmatched_traffic_is_not_reported_as_reached() {
        let nf = line_network();
        let engine = ReachabilityEngine::new(&nf);
        // dst=3 matches no rule anywhere -> dropped at s1, reaches nothing.
        let space = HeaderSpace::from(dst_match(3));
        let result = engine.reachable_from(sp(1, 1), space);
        assert!(result.endpoints.is_empty());
        // ...but the dropping switch is still part of the footprint: its
        // rules decided the (empty) outcome, while s2/s3 never saw traffic.
        assert_eq!(result.visited, vec![SwitchId(1)]);
        assert!(result.traversed_switches().is_empty());
    }

    #[test]
    fn empty_input_space_reaches_nothing() {
        let nf = line_network();
        let engine = ReachabilityEngine::new(&nf);
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::empty());
        assert!(result.endpoints.is_empty());
        assert!(result.loops.is_empty());
    }

    #[test]
    fn controller_bound_traffic_is_reported() {
        let mut nf = line_network();
        // s2 punts dst=2 traffic with l4_dst 9999 to the controller.
        let mut t = nf.transfer(SwitchId(2)).unwrap().clone();
        t.add_rule(RuleTransfer::new(
            100,
            Cube::wildcard().with_field(Field::L4Dst, 9999),
            RuleAction::ToController,
        ));
        nf.set_transfer(SwitchId(2), t);
        let engine = ReachabilityEngine::new(&nf);
        let probe = Header::builder().ip_dst(2).l4_dst(9999).build();
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::singleton(&probe));
        assert_eq!(result.to_controller.len(), 1);
        assert_eq!(result.to_controller[0].switch, SwitchId(2));
        assert_eq!(result.to_controller[0].path, vec![SwitchId(1), SwitchId(2)]);
        assert!(result.endpoints.is_empty());
    }

    #[test]
    fn forwarding_loop_is_detected() {
        // Two switches forwarding dst=5 to each other forever.
        let mut nf = NetworkFunction::new();
        nf.declare_switch(SwitchId(1), [PortId(1), PortId(2)]);
        nf.declare_switch(SwitchId(2), [PortId(1), PortId(2)]);
        nf.connect(sp(1, 2), sp(2, 1));
        nf.connect(sp(1, 1), sp(2, 2));
        let fwd = |port| {
            SwitchTransfer::from_rules([RuleTransfer::new(
                10,
                dst_match(5),
                RuleAction::forward(PortId(port)),
            )])
        };
        nf.set_transfer(SwitchId(1), fwd(2));
        nf.set_transfer(SwitchId(2), fwd(2));
        // There are no edge ports (fully wired); inject directly at s1:p1.
        let engine = ReachabilityEngine::new(&nf);
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::from(dst_match(5)));
        assert!(!result.loops.is_empty(), "loop must be reported");
        assert!(result.endpoints.is_empty());
    }

    #[test]
    fn traversed_switches_and_path_bounds() {
        let nf = line_network();
        let engine = ReachabilityEngine::new(&nf);
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::from(dst_match(2)));
        assert_eq!(
            result.traversed_switches(),
            vec![SwitchId(1), SwitchId(2), SwitchId(3)]
        );
        assert_eq!(result.visited, result.traversed_switches());
        assert_eq!(result.path_length_bounds(), Some((3, 3)));
    }

    #[test]
    fn sources_reaching_inverse_query() {
        let nf = line_network();
        let engine = ReachabilityEngine::new(&nf);
        // Who can reach h2's access point (s3:p2) with dst=2 traffic?
        let sources = engine.sources_reaching(sp(3, 2), &HeaderSpace::from(dst_match(2)));
        assert_eq!(sources, vec![sp(1, 1)]);
        // Nobody reaches it with dst=3 traffic.
        let none = engine.sources_reaching(sp(3, 2), &HeaderSpace::from(dst_match(3)));
        assert!(none.is_empty());
    }

    #[test]
    fn max_hops_truncates_long_paths() {
        let nf = line_network();
        let engine = ReachabilityEngine::with_options(
            &nf,
            ReachabilityOptions {
                max_hops: 1,
                max_cubes: 4096,
            },
        );
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::from(dst_match(2)));
        assert!(result.endpoints.is_empty());
        assert!(result.truncated_branches > 0);
    }

    #[test]
    fn reachability_equivalence_oracle() {
        let nf = line_network();
        // Identical functions are equivalent, and an incrementally mutated
        // copy stays equivalent to a rebuilt one as long as the rule *sets*
        // agree semantically.
        assert!(reachability_equivalent(&nf, &nf.clone()));
        // A rule matching traffic that was already dropped upstream changes
        // nothing: the oracle compares behaviour, not rule lists.
        let mut incremental = line_network();
        let inert = RuleTransfer::new(50, dst_match(7), RuleAction::Drop);
        incremental.insert_rule(SwitchId(2), inert.clone());
        assert!(reachability_equivalent(&nf, &incremental));
        incremental.remove_rule(SwitchId(2), &inert);
        assert!(reachability_equivalent(&nf, &incremental));
        // A behaviour-changing rule breaks equivalence.
        let mut diverged = line_network();
        diverged.insert_rule(
            SwitchId(1),
            RuleTransfer::new(99, dst_match(2), RuleAction::Drop),
        );
        assert!(!reachability_equivalent(&nf, &diverged));
    }

    #[test]
    fn multicast_reaches_multiple_endpoints() {
        // One switch with two edge ports; a rule multicasts to both.
        let mut nf = NetworkFunction::new();
        nf.declare_switch(SwitchId(1), [PortId(1), PortId(2), PortId(3)]);
        nf.set_transfer(
            SwitchId(1),
            SwitchTransfer::from_rules([RuleTransfer::new(
                10,
                dst_match(9),
                RuleAction::Forward {
                    ports: vec![PortId(2), PortId(3)],
                    rewrite: None,
                },
            )]),
        );
        let engine = ReachabilityEngine::new(&nf);
        let result = engine.reachable_from(sp(1, 1), HeaderSpace::from(dst_match(9)));
        let ports = result.reached_ports();
        assert_eq!(ports, vec![sp(1, 2), sp(1, 3)]);
    }
}
