//! # rvaas-telemetry — the unified observability substrate
//!
//! Every layer of the RVaaS service plane used to keep its own ad-hoc stats
//! struct (`ServiceStats`, `CacheStats`, `ReverifyStats`); this crate
//! replaces those with one shared, zero-dependency [`Registry`] of named
//! metrics, built entirely on `std` atomics:
//!
//! * [`Counter`] — a monotonic `u64`; `inc`/`add` are single relaxed
//!   atomic RMWs, safe on any hot path.
//! * [`Gauge`] — a signed instantaneous value (queue depth, epoch serial).
//! * [`Histogram`] — log₂-bucketed distribution with a lock-free
//!   [`record`](Histogram::record), mergeable [`HistogramSnapshot`]s and
//!   percentile extraction (p50/p90/p99) clamped to the observed min/max.
//! * [`Span`] — an RAII timer tracing one stage of the query lifecycle
//!   (`registry.span("pool.eval")` records elapsed microseconds into the
//!   `rvaas_stage_latency_us{stage="pool.eval"}` histogram on drop).
//! * [`Registry::render_text`] — Prometheus text exposition (`# HELP` /
//!   `# TYPE` / sample lines) ready to be served verbatim from a `/metrics`
//!   endpoint; [`text::parse_text`] is the matching line-level parser the
//!   tests and the CI format gate use.
//! * [`trace`] — the causal layer on top of the aggregates: per-ingress
//!   [`TraceId`]s, a sharded ring-buffer [`FlightRecorder`] of structured
//!   events (default-on; appends cost a relaxed RMW plus a few stores),
//!   bounded slow-query retention, and histogram **exemplars** linking each
//!   stage-latency family's worst recent observation back to its trace.
//!
//! Handles returned by the registry are `Arc`s: look a metric up once at
//! construction time, then record through the handle — the registry's
//! internal mutex is only ever taken at registration and render time, never
//! on the metric hot path.
//!
//! ```
//! use rvaas_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let queries = registry.counter("rvaas_queries_total", "Queries answered.");
//! let latency = registry.histogram("rvaas_query_latency_us", "Query latency (µs).");
//! queries.inc();
//! latency.record(250);
//! {
//!     let _span = registry.span("pool.eval"); // records on drop
//! }
//! let text = registry.render_text();
//! assert!(text.contains("rvaas_queries_total 1"));
//! assert!(text.contains("# TYPE rvaas_query_latency_us histogram"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod metric;
pub mod registry;
pub mod text;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, Span, BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{Exemplar, MetricKind, Registry, StageSpan};
pub use text::{parse_text, render_value, Sample, TextParseError};
pub use trace::{
    CaptureReason, FlightRecorder, RetainedTrace, TraceContext, TraceEvent, TraceId, TraceStage,
};
