//! The metric [`Registry`]: named families of counters, gauges, and
//! histograms with label support, plus Prometheus text rendering.

use crate::histogram::{bucket_bound, bucket_index, Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use crate::text;
use crate::trace::TraceId;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Histogram family every [`Registry::span`] records into.
pub const STAGE_LATENCY_METRIC: &str = "rvaas_stage_latency_us";

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous signed value.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One histogram instance's remembered worst observation and the trace
/// that produced it; see [`Registry::exemplars`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Metric family name (e.g. `rvaas_stage_latency_us`).
    pub metric: String,
    /// The instance's sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The worst recorded value since the exemplar was last displaced.
    pub value: u64,
    /// Flight-recorder trace that produced the value.
    pub trace: TraceId,
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    /// Instances keyed by their sorted label pairs.
    instances: BTreeMap<Vec<(String, String)>, Instrument>,
}

/// A registry of named metric families.
///
/// Registration (`counter`/`gauge`/`histogram` and their `_with` labelled
/// variants) takes an internal mutex and returns an `Arc` handle; recording
/// through the handle never touches the registry again, so the hot path is
/// pure atomics. Registering the same (name, labels) twice returns the same
/// underlying instrument; registering a name under two different kinds
/// panics — that is a programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.lock().unwrap();
        f.debug_struct("Registry")
            .field("families", &families.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry already wrapped in an [`Arc`], ready to share
    /// across threads.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Registry::new())
    }

    /// The counter `name` with no labels, registering it on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// The counter `name` with the given label pairs.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, labels, MetricKind::Counter) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// The gauge `name` with no labels, registering it on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// The gauge `name` with the given label pairs.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, labels, MetricKind::Gauge) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// The histogram `name` with no labels, registering it on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// The histogram `name` with the given label pairs.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.instrument(name, help, labels, MetricKind::Histogram) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in instrument()"),
        }
    }

    /// The `rvaas_stage_latency_us{stage="<stage>"}` histogram. Hot paths
    /// should fetch this once and time through the handle ([`Histogram::span`])
    /// rather than paying the registry lookup per measurement.
    pub fn stage_histogram(&self, stage: &str) -> Arc<Histogram> {
        self.histogram_with(
            STAGE_LATENCY_METRIC,
            "Per-stage latency of the query/epoch lifecycle, in microseconds.",
            &[("stage", stage)],
        )
    }

    /// An RAII timer for one stage of the query lifecycle: records elapsed
    /// microseconds into `rvaas_stage_latency_us{stage="<stage>"}` on drop.
    #[must_use]
    pub fn span(&self, stage: &str) -> StageSpan {
        StageSpan {
            histogram: self.stage_histogram(stage),
            start: Instant::now(),
            trace: TraceId::NONE,
        }
    }

    /// Like [`span`](Registry::span) but attributed to `trace`, so the
    /// stage family's exemplar can point back at the worst observation's
    /// flight-recorder chain.
    #[must_use]
    pub fn span_traced(&self, stage: &str, trace: TraceId) -> StageSpan {
        StageSpan {
            histogram: self.stage_histogram(stage),
            start: Instant::now(),
            trace,
        }
    }

    /// Every histogram instance that currently remembers an exemplar. The
    /// daemon exports these next to the retained slow traces so a latency
    /// spike in a scrape links directly to a reconstructable trace.
    #[must_use]
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let families = self.families.lock().unwrap();
        let mut out = Vec::new();
        for (name, family) in families.iter() {
            for (labels, instrument) in &family.instances {
                if let Instrument::Histogram(h) = instrument {
                    if let Some((value, trace)) = h.exemplar() {
                        out.push(Exemplar {
                            metric: name.clone(),
                            labels: labels.clone(),
                            value,
                            trace,
                        });
                    }
                }
            }
        }
        out
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> Instrument {
        assert!(
            text::valid_metric_name(name),
            "invalid metric name: {name:?}"
        );
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                assert!(text::valid_label_name(k), "invalid label name: {k:?}");
                assert!(
                    !(kind == MetricKind::Histogram && *k == "le"),
                    "label name \"le\" is reserved for histogram buckets"
                );
                ((*k).to_string(), (*v).to_string())
            })
            .collect();
        key.sort();
        key.dedup_by(|a, b| a.0 == b.0);

        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            instances: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} registered as {} but requested as {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let instrument = family.instances.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => Instrument::Counter(Arc::new(Counter::new())),
            MetricKind::Gauge => Instrument::Gauge(Arc::new(Gauge::new())),
            MetricKind::Histogram => Instrument::Histogram(Arc::new(Histogram::new())),
        });
        match instrument {
            Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
            Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
            Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
        }
    }

    /// Sum of a counter family across all of its label sets; 0 when the
    /// family does not exist.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        let families = self.families.lock().unwrap();
        families.get(name).map_or(0, |family| {
            family
                .instances
                .values()
                .map(|i| match i {
                    Instrument::Counter(c) => c.get(),
                    _ => 0,
                })
                .sum()
        })
    }

    /// Merged snapshot of a histogram family across all of its label sets;
    /// empty when the family does not exist.
    #[must_use]
    pub fn histogram_snapshot(&self, name: &str) -> HistogramSnapshot {
        let families = self.families.lock().unwrap();
        let mut merged = HistogramSnapshot::empty();
        if let Some(family) = families.get(name) {
            for instrument in family.instances.values() {
                if let Instrument::Histogram(h) = instrument {
                    merged.merge(&h.snapshot());
                }
            }
        }
        merged
    }

    /// Renders every registered family in the Prometheus text exposition
    /// format: a `# HELP`/`# TYPE` header per family followed by its sample
    /// lines (histograms expand to cumulative `_bucket`/`_sum`/`_count`).
    #[must_use]
    pub fn render_text(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", text::escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, instrument) in &family.instances {
                match instrument {
                    Instrument::Counter(c) => {
                        text::write_sample(&mut out, name, labels, &c.get().to_string());
                    }
                    Instrument::Gauge(g) => {
                        text::write_sample(&mut out, name, labels, &g.get().to_string());
                    }
                    Instrument::Histogram(h) => {
                        render_histogram(&mut out, name, labels, &h.snapshot());
                        // Exemplar comment: the parser skips unknown comment
                        // kinds, so scrapers that don't understand exemplars
                        // see a plain histogram while the trace link still
                        // rides the exposition.
                        if let Some((value, trace)) = h.exemplar() {
                            out.push_str("# EXEMPLAR ");
                            text::write_sample(
                                &mut out,
                                name,
                                labels,
                                &format!("{value} trace={}", trace.0),
                            );
                        }
                    }
                }
            }
        }
        out
    }
}

/// Writes the `_bucket`/`_sum`/`_count` expansion of one histogram
/// instance. Buckets are cumulative; only buckets up to the one holding the
/// observed max are materialised (plus the mandatory `+Inf`), which keeps an
/// idle scrape compact without changing its meaning.
fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let bucket_name = format!("{name}_bucket");
    let top = if snap.count == 0 {
        0
    } else {
        bucket_index(snap.max)
    };
    let mut cumulative: u64 = 0;
    for (i, &n) in snap.buckets.iter().enumerate().take(top + 1) {
        cumulative = cumulative.saturating_add(n);
        let mut with_le = labels.to_vec();
        with_le.push(("le".to_string(), bucket_bound(i).to_string()));
        text::write_sample(out, &bucket_name, &with_le, &cumulative.to_string());
    }
    let mut with_inf = labels.to_vec();
    with_inf.push(("le".to_string(), "+Inf".to_string()));
    text::write_sample(out, &bucket_name, &with_inf, &snap.count.to_string());
    text::write_sample(out, &format!("{name}_sum"), labels, &snap.sum.to_string());
    text::write_sample(
        out,
        &format!("{name}_count"),
        labels,
        &snap.count.to_string(),
    );
}

/// RAII timer over the shared `rvaas_stage_latency_us` histogram; created by
/// [`Registry::span`], records elapsed microseconds on drop.
#[derive(Debug)]
pub struct StageSpan {
    histogram: Arc<Histogram>,
    start: Instant,
    trace: TraceId,
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        if self.trace.is_none() {
            self.histogram.record_since(self.start);
        } else {
            self.histogram.record_since_traced(self.start, self.trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_instrument() {
        let registry = Registry::new();
        let a = registry.counter("rvaas_queries_total", "Queries.");
        let b = registry.counter("rvaas_queries_total", "Queries.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(registry.counter_total("rvaas_queries_total"), 2);
    }

    #[test]
    fn label_sets_are_distinct_instances() {
        let registry = Registry::new();
        let hits = registry.counter_with("rvaas_ops_total", "Ops.", &[("op", "hit")]);
        let misses = registry.counter_with("rvaas_ops_total", "Ops.", &[("op", "miss")]);
        hits.add(3);
        misses.add(4);
        assert_eq!(hits.get(), 3);
        assert_eq!(misses.get(), 4);
        assert_eq!(registry.counter_total("rvaas_ops_total"), 7);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = Registry::new();
        let a = registry.counter_with("m_total", "M.", &[("a", "1"), ("b", "2")]);
        let b = registry.counter_with("m_total", "M.", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        let _ = registry.counter("m_total", "M.");
        let _ = registry.gauge("m_total", "M.");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        let registry = Registry::new();
        let _ = registry.counter("9starts_with_digit", "M.");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_on_histogram_panics() {
        let registry = Registry::new();
        let _ = registry.histogram_with("h_us", "H.", &[("le", "5")]);
    }

    #[test]
    fn span_records_into_stage_histogram() {
        let registry = Registry::new();
        {
            let _span = registry.span("pool.eval");
        }
        {
            let _span = registry.span("pool.eval");
        }
        let snap = registry.histogram_snapshot(STAGE_LATENCY_METRIC);
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn traced_spans_surface_as_family_exemplars() {
        let registry = Registry::new();
        {
            let _span = registry.span_traced("pool.eval", TraceId(42));
        }
        let exemplars = registry.exemplars();
        assert_eq!(exemplars.len(), 1);
        let exemplar = &exemplars[0];
        assert_eq!(exemplar.metric, STAGE_LATENCY_METRIC);
        assert_eq!(
            exemplar.labels,
            [("stage".to_string(), "pool.eval".to_string())]
        );
        assert_eq!(exemplar.trace, TraceId(42));
        // Untraced spans never displace an exemplar's trace link.
        {
            let _span = registry.span("pool.eval");
        }
        assert_eq!(registry.exemplars()[0].trace, TraceId(42));
    }

    #[test]
    fn exemplars_render_as_comments_without_breaking_the_exposition() {
        let registry = Registry::new();
        registry
            .histogram_with(
                STAGE_LATENCY_METRIC,
                "Stage latency.",
                &[("stage", "pool.eval")],
            )
            .record_traced(500, TraceId(42));
        let rendered = registry.render_text();
        assert!(rendered
            .contains("# EXEMPLAR rvaas_stage_latency_us{stage=\"pool.eval\"} 500 trace=42"));
        // The exemplar rides as a comment, so the document still parses and
        // the comment contributes no sample.
        let samples = crate::text::parse_text(&rendered).unwrap();
        assert!(samples.iter().all(|s| s.name != "# EXEMPLAR"));
        assert!(samples
            .iter()
            .any(|s| s.name == "rvaas_stage_latency_us_count" && s.value == 1.0));
        // Untraced histograms render no exemplar comment.
        let plain = Registry::new();
        plain.histogram("h_us", "H.").record(9);
        assert!(!plain.render_text().contains("EXEMPLAR"));
    }

    #[test]
    fn histogram_snapshot_merges_across_labels() {
        let registry = Registry::new();
        registry
            .histogram_with("lat_us", "L.", &[("shard", "0")])
            .record(10);
        registry
            .histogram_with("lat_us", "L.", &[("shard", "1")])
            .record(1000);
        let snap = registry.histogram_snapshot("lat_us");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 10);
        assert_eq!(snap.max, 1000);
    }

    #[test]
    fn render_text_is_parseable_and_complete() {
        let registry = Registry::new();
        registry
            .counter("rvaas_queries_total", "Queries answered.")
            .add(5);
        registry
            .gauge("rvaas_queue_depth", "Jobs in flight.")
            .set(-2);
        registry
            .histogram("rvaas_query_latency_us", "Query latency (µs).")
            .record(300);
        let rendered = registry.render_text();
        assert!(rendered.contains("# TYPE rvaas_queries_total counter"));
        assert!(rendered.contains("# TYPE rvaas_queue_depth gauge"));
        assert!(rendered.contains("# TYPE rvaas_query_latency_us histogram"));
        let samples = crate::text::parse_text(&rendered).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "rvaas_queries_total" && s.value == 5.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "rvaas_queue_depth" && s.value == -2.0));
        // The +Inf bucket must equal _count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "rvaas_query_latency_us_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket present");
        let count = samples
            .iter()
            .find(|s| s.name == "rvaas_query_latency_us_count")
            .expect("_count present");
        assert_eq!(inf.value, count.value);
        assert_eq!(count.value, 1.0);
    }
}
