//! Prometheus text exposition: escaping and value formatting used by
//! [`Registry::render_text`](crate::Registry::render_text), and a
//! line-oriented parser ([`parse_text`]) used by the golden/property tests
//! and the CI format gate.

use std::fmt::Write as _;

/// Escapes a `# HELP` string: backslashes and newlines.
#[must_use]
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslashes, double quotes, and newlines.
#[must_use]
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value the way the exposition format expects: integral
/// values without a decimal point, everything else in Rust's shortest
/// round-trippable float form.
#[must_use]
pub fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// True when `name` is a valid metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// True when `name` is a valid label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
#[must_use]
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Writes one sample line: `name{label="value",...} value`.
pub(crate) fn write_sample(out: &mut String, name: &str, labels: &[(String, String)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// One parsed sample line from an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms this includes the `_bucket`/`_sum`/
    /// `_count` suffix, exactly as exposed).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A violation of the text exposition format, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for TextParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextParseError {}

fn err(line: usize, message: impl Into<String>) -> TextParseError {
    TextParseError {
        line,
        message: message.into(),
    }
}

/// Parses a Prometheus text-exposition document into its sample lines,
/// validating comment lines (`# HELP` / `# TYPE`) along the way.
///
/// Returns every non-comment sample in order. Errors identify the first
/// malformed line.
pub fn parse_text(input: &str) -> Result<Vec<Sample>, TextParseError> {
    let mut samples = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            parse_comment(lineno, comment)?;
            continue;
        }
        samples.push(parse_sample(lineno, line)?);
    }
    Ok(samples)
}

fn parse_comment(lineno: usize, comment: &str) -> Result<(), TextParseError> {
    let comment = comment.trim_start();
    if let Some(rest) = comment.strip_prefix("HELP ") {
        let name = rest.split_whitespace().next().unwrap_or("");
        if !valid_metric_name(name) {
            return Err(err(
                lineno,
                format!("invalid metric name in HELP: {name:?}"),
            ));
        }
    } else if let Some(rest) = comment.strip_prefix("TYPE ") {
        let mut parts = rest.split_whitespace();
        let name = parts.next().unwrap_or("");
        let kind = parts.next().unwrap_or("");
        if !valid_metric_name(name) {
            return Err(err(
                lineno,
                format!("invalid metric name in TYPE: {name:?}"),
            ));
        }
        if !matches!(
            kind,
            "counter" | "gauge" | "histogram" | "summary" | "untyped"
        ) {
            return Err(err(lineno, format!("invalid metric type: {kind:?}")));
        }
    }
    // Other comments are free-form and ignored per the spec.
    Ok(())
}

fn parse_sample(lineno: usize, line: &str) -> Result<Sample, TextParseError> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| err(lineno, "sample line has no value"))?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(err(lineno, format!("invalid metric name: {name:?}")));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        parse_labels(lineno, body)?
    } else {
        (Vec::new(), rest)
    };
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(err(lineno, "sample line has no value"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| err(lineno, format!("invalid sample value: {other:?}")))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parsed label pairs plus the remainder of the line they were read from.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

/// Parses `key="value",...}` (the leading `{` already stripped), returning
/// the label pairs and the remainder of the line after the closing brace.
fn parse_labels(lineno: usize, mut body: &str) -> Result<ParsedLabels<'_>, TextParseError> {
    let mut labels = Vec::new();
    loop {
        body = body.trim_start_matches([',', ' ']);
        if let Some(rest) = body.strip_prefix('}') {
            return Ok((labels, rest));
        }
        let eq = body
            .find('=')
            .ok_or_else(|| err(lineno, "label without '='"))?;
        let key = &body[..eq];
        if !valid_label_name(key) {
            return Err(err(lineno, format!("invalid label name: {key:?}")));
        }
        let after_eq = &body[eq + 1..];
        let quoted = after_eq
            .strip_prefix('"')
            .ok_or_else(|| err(lineno, "label value is not quoted"))?;
        let (value, rest) = parse_quoted(lineno, quoted)?;
        labels.push((key.to_string(), value));
        body = rest;
    }
}

/// Parses an escaped label value up to its closing quote; returns the
/// unescaped value and the remainder after the quote.
fn parse_quoted(lineno: usize, s: &str) -> Result<(String, &str), TextParseError> {
    let mut value = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '\\')) => value.push('\\'),
                Some((_, '"')) => value.push('"'),
                Some((_, 'n')) => value.push('\n'),
                other => {
                    return Err(err(
                        lineno,
                        format!("invalid escape sequence: \\{:?}", other.map(|(_, c)| c)),
                    ))
                }
            },
            other => value.push(other),
        }
    }
    Err(err(lineno, "unterminated label value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_values_like_prometheus() {
        assert_eq!(render_value(0.0), "0");
        assert_eq!(render_value(42.0), "42");
        assert_eq!(render_value(-3.0), "-3");
        assert_eq!(render_value(0.5), "0.5");
        assert_eq!(render_value(f64::INFINITY), "+Inf");
        assert_eq!(render_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(render_value(f64::NAN), "NaN");
    }

    #[test]
    fn parses_plain_and_labelled_samples() {
        let doc = "\
# HELP rvaas_queries_total Queries answered.
# TYPE rvaas_queries_total counter
rvaas_queries_total 17
rvaas_stage_latency_us_bucket{stage=\"pool.eval\",le=\"+Inf\"} 3
";
        let samples = parse_text(doc).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "rvaas_queries_total");
        assert!(samples[0].labels.is_empty());
        assert_eq!(samples[0].value, 17.0);
        assert_eq!(samples[1].name, "rvaas_stage_latency_us_bucket");
        assert_eq!(
            samples[1].labels,
            vec![
                ("stage".to_string(), "pool.eval".to_string()),
                ("le".to_string(), "+Inf".to_string()),
            ]
        );
        assert_eq!(samples[1].value, 3.0);
    }

    #[test]
    fn round_trips_escaped_label_values() {
        let tricky = "a\\b\"c\nd";
        let mut line = String::new();
        write_sample(
            &mut line,
            "m",
            &[("k".to_string(), tricky.to_string())],
            "1",
        );
        let samples = parse_text(&line).unwrap();
        assert_eq!(samples[0].labels[0].1, tricky);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_text("1bad_name 3").is_err());
        assert!(parse_text("name_only").is_err());
        assert!(parse_text("m{k=\"unterminated} 1").is_err());
        assert!(parse_text("m{k=unquoted} 1").is_err());
        assert!(parse_text("m{1bad=\"v\"} 1").is_err());
        assert!(parse_text("m notanumber").is_err());
        assert!(parse_text("# TYPE m flavor").is_err());
        let e = parse_text("ok 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
