//! The scalar metric types: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// `inc`/`add` are single relaxed atomic read-modify-writes — no locks, no
/// allocation — so counters are safe to bump on the hottest paths. Values
/// saturate at `u64::MAX` instead of wrapping, so a scrape can never observe
/// a counter going backwards.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating at `u64::MAX`).
    pub fn add(&self, n: u64) {
        // A plain fetch_add would wrap at the top of the range; saturate
        // instead so the monotonicity contract survives even absurd totals.
        let prev = self.value.fetch_add(n, Ordering::Relaxed);
        if prev.checked_add(n).is_none() {
            self.value.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depth, epoch serial, worker count).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts_and_saturates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX - 10);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_consistent_under_contention() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
