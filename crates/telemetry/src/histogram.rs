//! Log₂-bucketed latency histogram with lock-free recording, mergeable
//! snapshots, and percentile extraction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::trace::TraceId;

/// Number of buckets: one for value 0, then one per power of two up to
/// `u64::MAX`. Bucket `i > 0` covers the half-open range `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Upper bound (inclusive) of bucket `i`: 0 for bucket 0, `2^i - 1` above.
#[must_use]
pub fn bucket_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Bucket index a value lands in: 0 for 0, otherwise `64 - leading_zeros`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// A log₂-bucketed distribution of `u64` observations (typically latency in
/// microseconds).
///
/// [`record`](Histogram::record) is a handful of relaxed atomic operations —
/// no locks, no allocation — so it is safe on the per-query hot path.
/// Exact min and max are tracked alongside the buckets so percentile
/// estimates can be clamped to observed values (a single-sample histogram
/// reports that sample exactly at every quantile).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Exemplar: the worst observation recorded with a trace attached, and
    /// the trace it belongs to — a p99 spike links straight back to a
    /// reconstructable flight-recorder chain.
    exemplar_value: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            exemplar_value: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .field("min", &snap.min)
            .field("max", &snap.max)
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation. Lock-free: five relaxed atomic RMWs.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate the running sum the same way Counter does so a scrape
        // never sees it move backwards.
        let prev = self.sum.fetch_add(value, Ordering::Relaxed);
        if prev.checked_add(value).is_none() {
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the elapsed microseconds since `start`.
    pub fn record_since(&self, start: Instant) {
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record(us);
    }

    /// Records one observation and, when it is the worst traced one seen so
    /// far, remembers `trace` as the family's exemplar. The exemplar update
    /// is two relaxed stores on a path taken only for new maxima; a racing
    /// pair of simultaneous maxima may interleave value and trace, which is
    /// acceptable for a diagnostic pointer.
    pub fn record_traced(&self, value: u64, trace: TraceId) {
        self.record(value);
        if !trace.is_none() && value >= self.exemplar_value.load(Ordering::Relaxed) {
            self.exemplar_value.store(value, Ordering::Relaxed);
            self.exemplar_trace.store(trace.0, Ordering::Relaxed);
        }
    }

    /// Records elapsed microseconds since `start` under `trace`.
    pub fn record_since_traced(&self, start: Instant, trace: TraceId) {
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record_traced(us, trace);
    }

    /// The worst traced observation and its trace, if any was recorded via
    /// [`record_traced`](Histogram::record_traced).
    #[must_use]
    pub fn exemplar(&self) -> Option<(u64, TraceId)> {
        let trace = self.exemplar_trace.load(Ordering::Relaxed);
        if trace == 0 {
            None
        } else {
            Some((self.exemplar_value.load(Ordering::Relaxed), TraceId(trace)))
        }
    }

    /// An RAII timer that records elapsed microseconds into this histogram
    /// when dropped.
    #[must_use]
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: Instant::now(),
            trace: TraceId::NONE,
        }
    }

    /// Like [`span`](Histogram::span), but the observation is attributed to
    /// `trace` so it can become the histogram's exemplar.
    #[must_use]
    pub fn span_traced(&self, trace: TraceId) -> Span<'_> {
        Span {
            histogram: self,
            start: Instant::now(),
            trace,
        }
    }

    /// A point-in-time copy of the distribution.
    ///
    /// Individual loads are relaxed, so a snapshot taken while writers are
    /// active may be internally off by in-flight observations; totals are
    /// exact once writers quiesce.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state, supporting merge and
/// quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity element for [`merge`](Self::merge)).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot::default()
    }

    /// True when no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`. Counts saturate, so merging is associative
    /// and commutative even at the top of the `u64` range.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`, estimated from the bucket the
    /// target rank falls in and clamped to the observed `[min, max]` — so an
    /// empty snapshot reports 0 and a single-sample snapshot reports that
    /// sample exactly at every quantile.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, rounded up (nearest-rank
        // definition); q = 0 degenerates to the first observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen: u64 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// RAII timer: records elapsed microseconds into its histogram on drop.
///
/// Obtained from [`Histogram::span`]; see also
/// [`Registry::span`](crate::Registry::span) for the labelled stage variant.
#[derive(Debug)]
pub struct Span<'a> {
    histogram: &'a Histogram,
    start: Instant,
    trace: TraceId,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.histogram.record_since_traced(self.start, self.trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..64 {
            let low = 1u64 << (i - 1);
            let high = (1u64 << i) - 1;
            assert_eq!(bucket_index(low), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(high), i, "high edge of bucket {i}");
        }
    }

    #[test]
    fn bucket_bounds_cover_the_domain() {
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        for i in 1..BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        for v in [0u64, 1, 2, 3, 100, 1 << 40, u64::MAX] {
            assert!(v <= bucket_bound(bucket_index(v)));
            if bucket_index(v) > 0 {
                assert!(v > bucket_bound(bucket_index(v) - 1));
            }
        }
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let h = Histogram::new();
        h.record(1234);
        let snap = h.snapshot();
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 1234, "q={q}");
        }
        assert_eq!(snap.min, 1234);
        assert_eq!(snap.max, 1234);
        assert_eq!(snap.sum, 1234);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in [1u64, 5, 10, 50, 100, 500, 1000, 5000, 10_000, 50_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = snap.quantile(q);
            assert!(v >= prev, "quantiles must be monotone");
            assert!(v >= snap.min && v <= snap.max);
            prev = v;
        }
        // p50 of ten log-spread samples must land within a bucket of the
        // 5th/6th observation (50 and 100 live in buckets 6 and 7).
        assert!((50..=127).contains(&snap.p50()), "p50 = {}", snap.p50());
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[100, 200]);
        let c = mk(&[9999]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);

        assert_eq!(ab_c, a_bc, "merge must be associative");
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab_c.count, 6);
        assert_eq!(ab_c.min, 1);
        assert_eq!(ab_c.max, 9999);
    }

    #[test]
    fn merge_identity_is_empty() {
        let h = Histogram::new();
        h.record(7);
        h.record(70);
        let snap = h.snapshot();
        let mut merged = snap.clone();
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, snap);
        let mut other = HistogramSnapshot::empty();
        other.merge(&snap);
        assert_eq!(other, snap);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = HistogramSnapshot::empty();
        a.count = u64::MAX - 1;
        a.sum = u64::MAX - 1;
        a.buckets[3] = u64::MAX - 1;
        a.min = 4;
        a.max = 7;
        let b = a.clone();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, u64::MAX);
        assert_eq!(merged.sum, u64::MAX);
        assert_eq!(merged.buckets[3], u64::MAX);
        // Quantiles on saturated counts must not panic or overflow.
        let q = merged.quantile(0.99);
        assert!(q >= merged.min && q <= merged.max);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Histogram::new();
        {
            let _span = h.span();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn exemplar_tracks_the_worst_traced_observation() {
        let h = Histogram::new();
        assert_eq!(h.exemplar(), None);
        h.record(9999); // untraced observations never become exemplars
        assert_eq!(h.exemplar(), None);
        h.record_traced(100, TraceId(7));
        h.record_traced(500, TraceId(8));
        h.record_traced(200, TraceId(9));
        assert_eq!(h.exemplar(), Some((500, TraceId(8))));
        assert_eq!(h.snapshot().count, 4);
    }

    #[test]
    fn sum_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(100);
        let snap = h.snapshot();
        assert_eq!(snap.sum, u64::MAX);
        assert_eq!(snap.count, 2);
    }
}
