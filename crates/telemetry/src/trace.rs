//! Causal tracing: per-ingress trace IDs, a sharded ring-buffer **flight
//! recorder** of structured events, and bounded slow-query retention.
//!
//! Aggregate metrics (counters, histograms) answer "how slow is p99?";
//! they cannot answer "why was *this* query slow?" or "which delta flipped
//! *this* verdict?". The flight recorder closes that gap without giving up
//! the hot-path cost profile the registry established:
//!
//! * [`FlightRecorder::append`] is one relaxed `fetch_add` (the shard's
//!   write cursor) plus a handful of atomic stores — the same order of
//!   magnitude as `Counter::inc` — so tracing is **default-on**.
//! * The ring is fixed-capacity and overwrites oldest: recording never
//!   allocates, never blocks, and memory is bounded at construction.
//! * Events are written under a seqlock-style sequence word, so a reader
//!   scanning the ring while writers are active either sees a whole event
//!   or skips the slot — events never tear.
//!
//! When a query's end-to-end latency exceeds a configurable threshold (or
//! it errors), [`FlightRecorder::capture`] promotes its full event chain
//! out of the ring into a bounded retained set before the ring's churn can
//! overwrite it — the daemon serves that set at `GET /v1/trace/slow`.
//!
//! A process-global recorder ([`recorder`]) keeps instrumentation free of
//! plumbing: ingress points mint a [`TraceContext`], thread it through the
//! request path explicitly (e.g. inside a pool job), and interior layers
//! that cannot carry a context (the incremental engine deep in `rvaas`
//! core) append to the ambient per-thread context installed with
//! [`TraceContext::enter`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring shards; a trace's events all land in `shards[id % SHARDS]`, so a
/// per-trace chain scan touches one shard and per-trace order follows the
/// shard's ticket order.
const SHARDS: usize = 8;

/// Default total ring capacity (slots across all shards).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Default slow-query promotion threshold in microseconds.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// Retained slow/errored traces (oldest evicted beyond this).
pub const RETAINED_TRACES: usize = 32;

/// A per-ingress trace identifier; `0` means "not traced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent trace: events appended under it are dropped.
    pub const NONE: TraceId = TraceId(0);

    /// True for [`TraceId::NONE`].
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The instrumented points of the service plane. Stored in a slot as a
/// `u64` discriminant; unknown discriminants read back from a torn or
/// half-overwritten slot are rejected during chain reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceStage {
    /// HTTP request accepted and parsed. `a` = client id, `b` = body bytes.
    IngressHttp = 1,
    /// Sync frame accepted and decoded. `a` = client id, `b` = have_serial.
    IngressSync = 2,
    /// Query enqueued to a pool shard. `a` = client id, `b` = shard.
    Dispatch = 3,
    /// Worker model caught up to the epoch. `a` = from serial, `b` = to.
    ModelSync = 4,
    /// Incremental in-place delta application. `a` = rules applied,
    /// `b` = model rules afterwards.
    IncrementalApply = 5,
    /// Full model rebuild (fallback path). `a` = model rules afterwards,
    /// `b` = switches rebuilt.
    ModelRebuild = 6,
    /// Query evaluated against the model. `a` = client id, `b` = serial.
    Eval = 7,
    /// Result served from cache. `a` = epoch serial, `b` = client id.
    CacheHit = 8,
    /// Cache lookup missed. `a` = epoch serial, `b` = client id.
    CacheMiss = 9,
    /// Epoch advance carried/invalidated entries. `a` = carried, `b` = inv.
    CacheCarry = 10,
    /// Verdict produced. `a` = epoch serial, `b` = latency in µs.
    Verdict = 11,
    /// Query failed. `a` = client id, `b` = HTTP-ish status code.
    QueryError = 12,
    /// Epoch published. `a` = serial, `b` = delta rule count.
    EpochPublish = 13,
    /// Epoch content digest + interest-index selection. `a` = digest,
    /// `b` = affected standing queries (`u64::MAX` = conservatively all).
    EpochDigest = 14,
    /// Sync session re-verified standing queries. `a` = serial, `b` = count.
    Reverify = 15,
}

impl TraceStage {
    /// The dotted stage name used in JSON exports and docs.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceStage::IngressHttp => "ingress.http",
            TraceStage::IngressSync => "ingress.sync",
            TraceStage::Dispatch => "pool.dispatch",
            TraceStage::ModelSync => "pool.model_sync",
            TraceStage::IncrementalApply => "model.incremental_apply",
            TraceStage::ModelRebuild => "model.rebuild",
            TraceStage::Eval => "pool.eval",
            TraceStage::CacheHit => "cache.hit",
            TraceStage::CacheMiss => "cache.miss",
            TraceStage::CacheCarry => "cache.carry",
            TraceStage::Verdict => "verdict",
            TraceStage::QueryError => "error",
            TraceStage::EpochPublish => "epoch.publish",
            TraceStage::EpochDigest => "epoch.digest",
            TraceStage::Reverify => "sync.reverify",
        }
    }

    /// Names for the two payload words, in JSON-export order.
    #[must_use]
    pub fn arg_names(&self) -> (&'static str, &'static str) {
        match self {
            TraceStage::IngressHttp => ("client", "request_bytes"),
            TraceStage::IngressSync => ("client", "have_serial"),
            TraceStage::Dispatch => ("client", "shard"),
            TraceStage::ModelSync => ("from_serial", "to_serial"),
            TraceStage::IncrementalApply => ("rules_applied", "model_rules"),
            TraceStage::ModelRebuild => ("rule_count", "switches"),
            TraceStage::Eval => ("client", "epoch_serial"),
            TraceStage::CacheHit | TraceStage::CacheMiss => ("epoch_serial", "client"),
            TraceStage::CacheCarry => ("carried", "invalidated"),
            TraceStage::Verdict => ("epoch_serial", "latency_us"),
            TraceStage::QueryError => ("client", "status"),
            TraceStage::EpochPublish => ("serial", "delta_rules"),
            TraceStage::EpochDigest => ("digest", "affected_queries"),
            TraceStage::Reverify => ("serial", "queries"),
        }
    }

    /// Reverses the `u64` discriminant a ring slot stores.
    #[must_use]
    pub fn from_code(code: u64) -> Option<TraceStage> {
        Some(match code {
            1 => TraceStage::IngressHttp,
            2 => TraceStage::IngressSync,
            3 => TraceStage::Dispatch,
            4 => TraceStage::ModelSync,
            5 => TraceStage::IncrementalApply,
            6 => TraceStage::ModelRebuild,
            7 => TraceStage::Eval,
            8 => TraceStage::CacheHit,
            9 => TraceStage::CacheMiss,
            10 => TraceStage::CacheCarry,
            11 => TraceStage::Verdict,
            12 => TraceStage::QueryError,
            13 => TraceStage::EpochPublish,
            14 => TraceStage::EpochDigest,
            15 => TraceStage::Reverify,
            _ => return None,
        })
    }
}

/// One reconstructed flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace: TraceId,
    /// Shard-local write ticket: strictly increasing in append order, so
    /// sorting a chain by `seq` recovers causal order.
    pub seq: u64,
    /// Microseconds since the recorder was created (monotone clock).
    pub at_us: u64,
    /// Which instrumented point emitted the event.
    pub stage: TraceStage,
    /// First payload word; meaning per [`TraceStage::arg_names`].
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Why a trace was promoted into the retained set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureReason {
    /// End-to-end latency exceeded the slow-query threshold.
    Slow {
        /// The offending latency in microseconds.
        latency_us: u64,
    },
    /// The request failed.
    Error,
}

impl CaptureReason {
    /// Short machine-readable tag for JSON exports.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            CaptureReason::Slow { .. } => "slow",
            CaptureReason::Error => "error",
        }
    }
}

/// A trace promoted out of the ring before churn could overwrite it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedTrace {
    /// The promoted trace.
    pub trace: TraceId,
    /// Why it was promoted.
    pub reason: CaptureReason,
    /// Recorder time of the promotion, µs.
    pub captured_at_us: u64,
    /// The full event chain at promotion time, in causal order.
    pub events: Vec<TraceEvent>,
}

/// One ring slot. All fields are atomics so concurrent overwrite is a data
/// race only in the benign "stale value" sense — `seq` brackets every write
/// (seqlock discipline) and readers discard slots whose bracket moved.
struct Slot {
    /// 0 = write in progress; otherwise `ticket + 1` of the stored event.
    seq: AtomicU64,
    trace: AtomicU64,
    at_us: AtomicU64,
    stage: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            at_us: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

struct Shard {
    cursor: AtomicU64,
    slots: Vec<Slot>,
}

/// The sharded, fixed-capacity, overwrite-oldest event ring plus the
/// bounded retained set for slow/errored traces.
pub struct FlightRecorder {
    shards: Vec<Shard>,
    started: Instant,
    enabled: AtomicBool,
    slow_threshold_us: AtomicU64,
    next_trace: AtomicU64,
    trace_base: u64,
    retained: Mutex<VecDeque<RetainedTrace>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("occupancy", &self.occupancy())
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_RING_CAPACITY, DEFAULT_SLOW_THRESHOLD_US)
    }
}

impl FlightRecorder {
    /// A recorder with `capacity` total ring slots (rounded up to at least
    /// one slot per shard) promoting traces slower than `slow_threshold_us`.
    #[must_use]
    pub fn with_capacity(capacity: usize, slow_threshold_us: u64) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        // Derive a per-process base so trace IDs from different processes
        // (or restarts) are distinguishable in logs; uniqueness within the
        // process comes from the counter alone.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0)
            ^ u64::from(std::process::id());
        FlightRecorder {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    cursor: AtomicU64::new(0),
                    slots: (0..per_shard).map(|_| Slot::empty()).collect(),
                })
                .collect(),
            started: Instant::now(),
            enabled: AtomicBool::new(true),
            slow_threshold_us: AtomicU64::new(slow_threshold_us),
            next_trace: AtomicU64::new(0),
            trace_base: (seed & 0xffff_ffff) << 32,
            retained: Mutex::new(VecDeque::new()),
        }
    }

    /// Total ring slots across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Slots currently holding an event (saturates at capacity once the
    /// ring has wrapped).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| (s.cursor.load(Ordering::Relaxed) as usize).min(s.slots.len()))
            .sum()
    }

    /// Turns recording on or off process-wide; minting and capture still
    /// work while off, appends become a single relaxed load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether appends are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adjusts the slow-query promotion threshold at runtime.
    pub fn set_slow_threshold_us(&self, threshold: u64) {
        self.slow_threshold_us.store(threshold, Ordering::Relaxed);
    }

    /// The current slow-query promotion threshold.
    #[must_use]
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder was created (the event clock).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Mints a fresh process-unique trace id (never [`TraceId::NONE`]).
    #[must_use]
    pub fn mint(&self) -> TraceId {
        let n = self
            .next_trace
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_add(1);
        let id = self.trace_base.wrapping_add(n);
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Appends one event to `trace`'s shard. Lock-free: one relaxed RMW on
    /// the shard cursor plus six atomic stores under a seqlock bracket.
    pub fn append(&self, trace: TraceId, stage: TraceStage, a: u64, b: u64) {
        if trace.is_none() || !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let shard = &self.shards[(trace.0 % SHARDS as u64) as usize];
        let ticket = shard.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &shard.slots[(ticket % shard.slots.len() as u64) as usize];
        // Seqlock write bracket: mark in-progress (the AcqRel RMW keeps the
        // field stores from floating above it), fill, then publish the
        // ticket. A reader accepts a slot only when both seq reads agree,
        // are nonzero, and map back to this slot index.
        slot.seq.swap(0, Ordering::AcqRel);
        slot.trace.store(trace.0, Ordering::Relaxed);
        slot.at_us.store(self.now_us(), Ordering::Relaxed);
        slot.stage.store(stage as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Reads one slot under the seqlock discipline; `None` when the slot is
    /// empty, mid-write, overwritten during the read, or holds a stage
    /// discriminant that does not decode (a torn remnant).
    fn read_slot(slot: &Slot, index: usize, len: usize) -> Option<TraceEvent> {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || ((s1 - 1) % len as u64) as usize != index {
            return None;
        }
        let trace = slot.trace.load(Ordering::Relaxed);
        let at_us = slot.at_us.load(Ordering::Relaxed);
        let stage = slot.stage.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        // The acquire fence keeps the field loads above from being
        // reordered past the confirming seq re-read below.
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 != s2 || trace == 0 {
            return None;
        }
        Some(TraceEvent {
            trace: TraceId(trace),
            seq: s1 - 1,
            at_us,
            stage: TraceStage::from_code(stage)?,
            a,
            b,
        })
    }

    /// Reconstructs `trace`'s event chain from its shard, in causal
    /// (append) order. Empty when the trace is unknown or fully overwritten.
    #[must_use]
    pub fn chain(&self, trace: TraceId) -> Vec<TraceEvent> {
        if trace.is_none() {
            return Vec::new();
        }
        let shard = &self.shards[(trace.0 % SHARDS as u64) as usize];
        let len = shard.slots.len();
        let mut events: Vec<TraceEvent> = shard
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| Self::read_slot(slot, i, len))
            .filter(|e| e.trace == trace)
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Promotes `trace`'s current chain into the bounded retained set.
    /// Called off the hot path (a slow or failed request), so the mutex is
    /// fine. Re-capturing a trace replaces its earlier retention.
    pub fn capture(&self, trace: TraceId, reason: CaptureReason) {
        if trace.is_none() {
            return;
        }
        let retained = RetainedTrace {
            trace,
            reason,
            captured_at_us: self.now_us(),
            events: self.chain(trace),
        };
        let mut set = self.retained.lock().expect("retained set poisoned");
        set.retain(|r| r.trace != trace);
        if set.len() >= RETAINED_TRACES {
            set.pop_front();
        }
        set.push_back(retained);
    }

    /// Captures `trace` iff `latency_us` crosses the slow threshold;
    /// returns whether it did.
    pub fn capture_if_slow(&self, trace: TraceId, latency_us: u64) -> bool {
        if latency_us >= self.slow_threshold_us.load(Ordering::Relaxed) {
            self.capture(trace, CaptureReason::Slow { latency_us });
            true
        } else {
            false
        }
    }

    /// The retained slow/errored traces, oldest first.
    #[must_use]
    pub fn retained(&self) -> Vec<RetainedTrace> {
        self.retained
            .lock()
            .expect("retained set poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// The pending configuration for the process-global recorder, applied when
/// [`recorder`] first constructs it (the ring cannot be resized in place).
static PENDING_CAPACITY: AtomicU64 = AtomicU64::new(0);
static PENDING_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US);
static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global flight recorder, constructed on first use with the
/// configuration last passed to [`configure`] (or the defaults).
pub fn recorder() -> &'static FlightRecorder {
    GLOBAL.get_or_init(|| {
        let capacity = match PENDING_CAPACITY.load(Ordering::Relaxed) {
            0 => DEFAULT_RING_CAPACITY,
            n => usize::try_from(n).unwrap_or(DEFAULT_RING_CAPACITY),
        };
        FlightRecorder::with_capacity(capacity, PENDING_THRESHOLD.load(Ordering::Relaxed))
    })
}

/// Configures the global recorder: the capacity takes effect only if the
/// recorder has not been constructed yet (returns `false` otherwise, with
/// the threshold still applied live).
pub fn configure(ring_capacity: usize, slow_threshold_us: u64) -> bool {
    PENDING_CAPACITY.store(ring_capacity as u64, Ordering::Relaxed);
    PENDING_THRESHOLD.store(slow_threshold_us, Ordering::Relaxed);
    match GLOBAL.get() {
        Some(existing) => {
            existing.set_slow_threshold_us(slow_threshold_us);
            false
        }
        None => true,
    }
}

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The trace context threaded through a request path: the id to append
/// under, carried explicitly across thread handoffs (a thread-local cannot
/// survive an mpsc hop) and installable as the thread's ambient context for
/// layers that cannot carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace all events from this request join.
    pub id: TraceId,
}

impl TraceContext {
    /// A context that records nothing.
    pub const NONE: TraceContext = TraceContext { id: TraceId::NONE };

    /// Mints a fresh id from the global recorder.
    #[must_use]
    pub fn mint() -> TraceContext {
        TraceContext {
            id: recorder().mint(),
        }
    }

    /// Wraps an id received from elsewhere (e.g. echoed over the wire).
    #[must_use]
    pub fn from_id(id: u64) -> TraceContext {
        TraceContext { id: TraceId(id) }
    }

    /// Appends one event under this context to the global recorder.
    pub fn event(&self, stage: TraceStage, a: u64, b: u64) {
        recorder().append(self.id, stage, a, b);
    }

    /// Installs this context as the thread's ambient context until the
    /// guard drops (restoring whatever was ambient before).
    #[must_use]
    pub fn enter(&self) -> AmbientGuard {
        let previous = CURRENT.with(|c| c.replace(self.id.0));
        AmbientGuard { previous }
    }

    /// The thread's ambient context ([`TraceContext::NONE`] outside any
    /// [`enter`](TraceContext::enter) scope).
    #[must_use]
    pub fn current() -> TraceContext {
        TraceContext {
            id: TraceId(CURRENT.with(Cell::get)),
        }
    }
}

/// Restores the previously ambient trace context on drop.
#[derive(Debug)]
pub struct AmbientGuard {
    previous: u64,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

/// Appends one event under the thread's ambient context — the hook for
/// layers too deep to thread a [`TraceContext`] through (no-op outside an
/// [`TraceContext::enter`] scope).
pub fn ambient_event(stage: TraceStage, a: u64, b: u64) {
    let current = TraceContext::current();
    if !current.id.is_none() {
        current.event(stage, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let rec = FlightRecorder::with_capacity(64, 1000);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = rec.mint();
            assert!(!id.is_none());
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn a_chain_reconstructs_in_append_order() {
        let rec = FlightRecorder::with_capacity(256, 1000);
        let t = rec.mint();
        rec.append(t, TraceStage::IngressHttp, 1, 42);
        rec.append(t, TraceStage::Dispatch, 1, 0);
        rec.append(t, TraceStage::Eval, 1, 7);
        rec.append(t, TraceStage::Verdict, 7, 123);
        let chain = rec.chain(t);
        let stages: Vec<_> = chain.iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                TraceStage::IngressHttp,
                TraceStage::Dispatch,
                TraceStage::Eval,
                TraceStage::Verdict
            ]
        );
        assert!(chain.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(chain.iter().all(|e| e.trace == t));
        assert_eq!(chain[3].b, 123);
    }

    #[test]
    fn the_ring_overwrites_oldest_and_occupancy_saturates() {
        let rec = FlightRecorder::with_capacity(SHARDS, 1000); // 1 slot/shard
        let t = rec.mint();
        for i in 0..100 {
            rec.append(t, TraceStage::Eval, i, 0);
        }
        let chain = rec.chain(t);
        assert_eq!(chain.len(), 1, "one slot per shard keeps only the last");
        assert_eq!(chain[0].a, 99);
        assert!(rec.occupancy() <= rec.capacity());
        assert!(rec.occupancy() >= 1);
    }

    #[test]
    fn disabled_recorder_drops_events_but_still_mints() {
        let rec = FlightRecorder::with_capacity(64, 1000);
        rec.set_enabled(false);
        let t = rec.mint();
        rec.append(t, TraceStage::Eval, 1, 1);
        assert!(rec.chain(t).is_empty());
        rec.set_enabled(true);
        rec.append(t, TraceStage::Eval, 1, 1);
        assert_eq!(rec.chain(t).len(), 1);
    }

    #[test]
    fn none_traces_record_nothing() {
        let rec = FlightRecorder::with_capacity(64, 1000);
        rec.append(TraceId::NONE, TraceStage::Eval, 1, 1);
        assert_eq!(rec.occupancy(), 0);
        assert!(rec.chain(TraceId::NONE).is_empty());
    }

    #[test]
    fn slow_capture_promotes_and_is_bounded() {
        let rec = FlightRecorder::with_capacity(4096, 500);
        assert!(!rec.capture_if_slow(rec.mint(), 499));
        assert!(rec.retained().is_empty());
        let mut promoted = Vec::new();
        for i in 0..(RETAINED_TRACES + 5) {
            let t = rec.mint();
            rec.append(t, TraceStage::Verdict, 1, 500 + i as u64);
            assert!(rec.capture_if_slow(t, 500 + i as u64));
            promoted.push(t);
        }
        let retained = rec.retained();
        assert_eq!(retained.len(), RETAINED_TRACES, "retention is bounded");
        // Oldest evicted, newest kept, chains intact.
        assert_eq!(retained.last().unwrap().trace, *promoted.last().unwrap());
        assert!(retained.iter().all(|r| !r.events.is_empty()));
        assert!(matches!(
            retained[0].reason,
            CaptureReason::Slow { latency_us } if latency_us >= 500
        ));
    }

    #[test]
    fn recapturing_a_trace_replaces_the_earlier_retention() {
        let rec = FlightRecorder::with_capacity(64, 0);
        let t = rec.mint();
        rec.append(t, TraceStage::Eval, 1, 1);
        rec.capture(t, CaptureReason::Error);
        rec.append(t, TraceStage::Verdict, 1, 9);
        rec.capture(t, CaptureReason::Slow { latency_us: 9 });
        let retained = rec.retained();
        assert_eq!(retained.iter().filter(|r| r.trace == t).count(), 1);
        assert_eq!(retained[0].events.len(), 2);
    }

    #[test]
    fn ambient_context_nests_and_restores() {
        assert!(TraceContext::current().id.is_none());
        let outer = TraceContext::from_id(11);
        let inner = TraceContext::from_id(22);
        {
            let _g1 = outer.enter();
            assert_eq!(TraceContext::current().id.0, 11);
            {
                let _g2 = inner.enter();
                assert_eq!(TraceContext::current().id.0, 22);
            }
            assert_eq!(TraceContext::current().id.0, 11);
        }
        assert!(TraceContext::current().id.is_none());
    }

    #[test]
    fn global_configure_applies_threshold_live() {
        let rec = recorder();
        let before = rec.slow_threshold_us();
        configure(DEFAULT_RING_CAPACITY, 777);
        assert_eq!(recorder().slow_threshold_us(), 777);
        configure(DEFAULT_RING_CAPACITY, before);
    }

    #[test]
    fn every_stage_round_trips_its_discriminant() {
        for code in 0..=32u64 {
            if let Some(stage) = TraceStage::from_code(code) {
                assert_eq!(stage as u64, code);
                assert!(!stage.as_str().is_empty());
                let (a, b) = stage.arg_names();
                assert!(!a.is_empty() && !b.is_empty());
            }
        }
        assert!(TraceStage::from_code(0).is_none());
        assert!(TraceStage::from_code(999).is_none());
    }

    proptest! {
        /// Satellite: concurrent writers never tear events and per-trace
        /// order is preserved. Each writer stamps every event with
        /// `b = a ^ trace`, so any cross-writer field mix is detectable.
        #[test]
        fn concurrent_writers_never_tear_and_order_is_preserved(
            writers in 2usize..5,
            events_per in 1u64..200,
            capacity in 16usize..512,
        ) {
            let rec = std::sync::Arc::new(FlightRecorder::with_capacity(capacity, u64::MAX));
            let traces: Vec<TraceId> = (0..writers).map(|_| rec.mint()).collect();
            let handles: Vec<_> = traces
                .iter()
                .map(|&t| {
                    let rec = std::sync::Arc::clone(&rec);
                    std::thread::spawn(move || {
                        for i in 0..events_per {
                            rec.append(t, TraceStage::Eval, i, i ^ t.0);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("writer panicked");
            }
            for &t in &traces {
                let chain = rec.chain(t);
                // Events may have been overwritten, but every surviving one
                // is whole: the checksum binds (a, b) to this trace.
                for e in &chain {
                    prop_assert_eq!(e.trace, t);
                    prop_assert_eq!(e.b, e.a ^ t.0, "torn event: fields from different writers");
                }
                // Per-trace order: both the ticket order and the payload
                // counter are strictly increasing.
                for w in chain.windows(2) {
                    prop_assert!(w[0].seq < w[1].seq);
                    prop_assert!(w[0].a < w[1].a, "per-trace append order lost");
                    prop_assert!(w[0].at_us <= w[1].at_us, "timestamps not monotone");
                }
            }
        }
    }
}
