//! Golden test for the Prometheus text-exposition format, plus property
//! tests that `render_text` output survives a line-by-line parse round-trip.

use proptest::prelude::*;
use rvaas_telemetry::{parse_text, render_value, Registry, Sample};

/// The exact exposition document for a small, fully deterministic registry.
/// Any change to the renderer's format shows up here as a diff.
#[test]
fn golden_exposition_document() {
    let registry = Registry::new();
    registry
        .counter("rvaas_queries_total", "Queries answered.")
        .add(17);
    registry
        .counter_with(
            "rvaas_cache_ops_total",
            "Cache operations by outcome.",
            &[("outcome", "hit")],
        )
        .add(9);
    registry
        .counter_with(
            "rvaas_cache_ops_total",
            "Cache operations by outcome.",
            &[("outcome", "miss")],
        )
        .add(4);
    registry
        .gauge("rvaas_queue_depth", "Jobs queued or in flight.")
        .set(3);
    let latency = registry.histogram("rvaas_query_latency_us", "Query latency (µs).");
    latency.record(0);
    latency.record(1);
    latency.record(3);
    latency.record(6);

    let expected = "\
# HELP rvaas_cache_ops_total Cache operations by outcome.
# TYPE rvaas_cache_ops_total counter
rvaas_cache_ops_total{outcome=\"hit\"} 9
rvaas_cache_ops_total{outcome=\"miss\"} 4
# HELP rvaas_queries_total Queries answered.
# TYPE rvaas_queries_total counter
rvaas_queries_total 17
# HELP rvaas_query_latency_us Query latency (µs).
# TYPE rvaas_query_latency_us histogram
rvaas_query_latency_us_bucket{le=\"0\"} 1
rvaas_query_latency_us_bucket{le=\"1\"} 2
rvaas_query_latency_us_bucket{le=\"3\"} 3
rvaas_query_latency_us_bucket{le=\"7\"} 4
rvaas_query_latency_us_bucket{le=\"+Inf\"} 4
rvaas_query_latency_us_sum 10
rvaas_query_latency_us_count 4
# HELP rvaas_queue_depth Jobs queued or in flight.
# TYPE rvaas_queue_depth gauge
rvaas_queue_depth 3
";
    assert_eq!(registry.render_text(), expected);
}

/// Histogram bucket lines must be cumulative and end with `+Inf == _count`.
#[test]
fn histogram_exposition_invariants() {
    let registry = Registry::new();
    let h = registry.histogram("h_us", "H.");
    for v in [1u64, 2, 4, 8, 16, 1024, 65_536] {
        h.record(v);
    }
    let samples = parse_text(&registry.render_text()).unwrap();
    let buckets: Vec<&Sample> = samples.iter().filter(|s| s.name == "h_us_bucket").collect();
    assert!(buckets.len() >= 2);
    let mut prev = 0.0;
    for b in &buckets {
        assert!(b.value >= prev, "bucket counts must be cumulative");
        prev = b.value;
    }
    let count = samples.iter().find(|s| s.name == "h_us_count").unwrap();
    assert_eq!(buckets.last().unwrap().value, count.value);
    assert_eq!(
        buckets.last().unwrap().labels.last().unwrap(),
        &("le".to_string(), "+Inf".to_string())
    );
}

/// Builds a registry from generated primitives and checks that every metric
/// written is recoverable from the parsed exposition output.
fn label_value(seed: u64) -> String {
    // Exercise the escaping path: backslashes, quotes, newlines.
    let specials = [
        "plain",
        "with\\backslash",
        "with\"quote",
        "with\nnewline",
        "",
    ];
    specials[(seed % specials.len() as u64) as usize].to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn render_parse_round_trip(
        counts in collection::vec(0u64..1_000_000, 1..6),
        gauge_vals in collection::vec(any::<u32>(), 1..4),
        hist_vals in collection::vec(any::<u64>(), 0..32),
        label_seed in any::<u64>(),
    ) {
        let registry = Registry::new();
        for (i, &c) in counts.iter().enumerate() {
            let value = label_value(label_seed.wrapping_add(i as u64));
            registry
                .counter_with("pt_events_total", "Events.", &[("kind", &value)])
                .add(c);
        }
        for (i, &g) in gauge_vals.iter().enumerate() {
            let name = format!("pt_gauge_{i}");
            registry.gauge(&name, "A gauge.").set(i64::from(g));
        }
        let h = registry.histogram("pt_lat_us", "Latency.");
        for &v in &hist_vals {
            h.record(v);
        }

        let rendered = registry.render_text();
        let samples = parse_text(&rendered).expect("render_text must be parseable");

        // Every counter instance round-trips by (name, labels, value).
        let mut expected_total = 0u64;
        for &c in &counts {
            expected_total += c;
        }
        let parsed_total: f64 = samples
            .iter()
            .filter(|s| s.name == "pt_events_total")
            .map(|s| s.value)
            .sum();
        prop_assert_eq!(parsed_total as u64, expected_total);

        for (i, &g) in gauge_vals.iter().enumerate() {
            let name = format!("pt_gauge_{i}");
            let sample = samples.iter().find(|s| s.name == name).unwrap();
            prop_assert_eq!(sample.value as u32, g);
        }

        let count = samples.iter().find(|s| s.name == "pt_lat_us_count").unwrap();
        prop_assert_eq!(count.value as usize, hist_vals.len());
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "pt_lat_us_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .unwrap();
        prop_assert_eq!(inf.value as usize, hist_vals.len());
    }

    #[test]
    fn render_value_parses_back(v in any::<u32>()) {
        let line = format!("pt_metric {}\n", render_value(f64::from(v)));
        let samples = parse_text(&line).unwrap();
        prop_assert_eq!(samples[0].value as u32, v);
    }
}
