//! Closes the monitor → epoch-store loop end to end: a [`ConfigMonitor`]
//! consumes raw switch messages, its [`drain_changes`] output is handed
//! straight to [`VerificationService::try_publish_changes`], and the
//! resulting epochs must be indistinguishable — digest for digest — from a
//! twin service that re-digests the monitor's full snapshot on every
//! publish. The `None` drain after a full-table poll reply must fall back
//! to the full-snapshot path.
//!
//! [`drain_changes`]: rvaas::ConfigMonitor::drain_changes

use rvaas::{ConfigMonitor, LocationMap, MonitorConfig, VerifierConfig};
use rvaas_client::QuerySpec;
use rvaas_controlplane::benign_rules;
use rvaas_openflow::{Action, FlowEntry, FlowMatch, Message};
use rvaas_service::{ServiceConfig, VerificationService};
use rvaas_topology::generators;
use rvaas_types::{ClientId, SimTime, SwitchId};

fn service_over(topology: &rvaas_topology::Topology) -> VerificationService {
    let config = ServiceConfig::new(VerifierConfig {
        use_history: false,
        locations: LocationMap::disclosed(topology),
    })
    .with_workers(1);
    VerificationService::new(topology.clone(), config)
}

/// Both services must expose the same epoch: serial, digest set and rule
/// count, and the same verdict for a representative query.
fn assert_epochs_agree(delta: &VerificationService, full: &VerificationService, round: &str) {
    let d = delta.store().current();
    let f = full.store().current();
    assert_eq!(d.serial, f.serial, "{round}: serials diverged");
    assert_eq!(d.digests, f.digests, "{round}: digest sets diverged");
    assert_eq!(
        d.snapshot.rule_count(),
        f.snapshot.rule_count(),
        "{round}: rule counts diverged"
    );
    let spec = QuerySpec::ReachableDestinations;
    let dv = delta.try_query(ClientId(1), spec.clone()).unwrap();
    let fv = full.try_query(ClientId(1), spec).unwrap();
    assert_eq!(dv.result, fv.result, "{round}: verdicts diverged");
}

#[test]
fn monitor_drained_changes_reproduce_full_snapshot_publishes() {
    let topology = generators::line(4, 2);
    let delta_service = service_over(&topology);
    let full_service = service_over(&topology);
    let mut monitor = ConfigMonitor::new(MonitorConfig::default());

    // --- initial table build arrives as passive notifications -----------
    let seed = benign_rules(&topology);
    for (switch, entry) in &seed {
        monitor.on_switch_message(
            *switch,
            &Message::FlowMonitorNotify {
                switch: *switch,
                entry: entry.clone(),
                added: true,
                at: SimTime::from_millis(1),
            },
            SimTime::from_millis(1),
        );
    }
    let changes = monitor.drain_changes().expect("no resync yet");
    assert_eq!(changes.len(), seed.len());
    delta_service
        .try_publish_changes(&changes, SimTime::from_millis(1))
        .unwrap();
    full_service
        .try_publish(monitor.snapshot(), SimTime::from_millis(1))
        .unwrap();
    assert_epochs_agree(&delta_service, &full_service, "seed");

    // --- a quiet window drains empty: nothing to publish -----------------
    assert_eq!(monitor.drain_changes(), Some(Vec::new()));

    // --- install + remove churn, one publish per window -------------------
    for round in 0..3u64 {
        let at = SimTime::from_millis(10 + round);
        let filter = FlowEntry::new(
            300 + round as u16,
            FlowMatch::to_ip(0x0a00_0001 + round as u32),
            vec![Action::Drop],
        );
        monitor.on_switch_message(
            SwitchId(2),
            &Message::FlowMonitorNotify {
                switch: SwitchId(2),
                entry: filter,
                added: true,
                at,
            },
            at,
        );
        let (victim_switch, victim_entry) = &seed[round as usize];
        monitor.on_switch_message(
            *victim_switch,
            &Message::FlowRemoved {
                switch: *victim_switch,
                entry: victim_entry.clone(),
                at,
            },
            at,
        );
        let changes = monitor.drain_changes().expect("no resync in this window");
        assert_eq!(changes.len(), 2);
        delta_service.try_publish_changes(&changes, at).unwrap();
        full_service.try_publish(monitor.snapshot(), at).unwrap();
        assert_epochs_agree(&delta_service, &full_service, &format!("churn {round}"));
    }

    // --- a full-table poll reply voids the delta: fall back to the
    // full-snapshot publish on both services ------------------------------
    let at = SimTime::from_millis(50);
    monitor.on_switch_message(
        SwitchId(1),
        &Message::FlowStatsReply {
            switch: SwitchId(1),
            entries: vec![FlowEntry::new(
                9,
                FlowMatch::to_ip(0x0a00_0002),
                vec![Action::Output(rvaas_types::PortId(1))],
            )],
        },
        at,
    );
    assert_eq!(monitor.drain_changes(), None, "resync voids the delta");
    delta_service.try_publish(monitor.snapshot(), at).unwrap();
    full_service.try_publish(monitor.snapshot(), at).unwrap();
    assert_epochs_agree(&delta_service, &full_service, "resync");

    // The next window is delta-driven again.
    monitor.on_switch_message(
        SwitchId(3),
        &Message::FlowMonitorNotify {
            switch: SwitchId(3),
            entry: FlowEntry::new(8, FlowMatch::any(), vec![Action::Drop]),
            added: true,
            at: SimTime::from_millis(60),
        },
        SimTime::from_millis(60),
    );
    let changes = monitor.drain_changes().expect("drained after resync");
    assert_eq!(changes.len(), 1);
    delta_service
        .try_publish_changes(&changes, SimTime::from_millis(60))
        .unwrap();
    full_service
        .try_publish(monitor.snapshot(), SimTime::from_millis(60))
        .unwrap();
    assert_epochs_agree(&delta_service, &full_service, "post-resync");
}
