//! The server side of the RTR-style delta-sync protocol.
//!
//! Each [`SyncServer`] speaks for one epoch store under a random-ish session
//! id (clients detect a restarted server by the id changing and fall back to
//! a reset). Clients register *standing queries*; when a delta invalidates
//! the published state, the server re-verifies the affected ones at the new
//! epoch — through the worker pool and its cache — and ships the refreshed
//! results inside the delta, so clients do not need a follow-up query round.
//!
//! "Affected" comes from the interest-space index
//! ([`rvaas::InterestIndex`]): every subscription is registered in the
//! index, each published epoch stores the index's selection in its delta,
//! and a served delta re-verifies the *stored* selections unioned over the
//! window intersected with the client's subscriptions. Using the frozen
//! per-epoch selections (instead of re-querying the index at serve time)
//! keeps lagging clients sound: a footprint refined after one of the
//! window's epochs can never hide a query that epoch had affected. With the
//! incremental engine disabled the server reverts to re-verifying
//! everything (the full-recomputation baseline).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use rvaas::AffectedQueries;
use rvaas_client::QuerySpec;
use rvaas_client::{
    decode_inband, InbandMessage, ReverifiedQuery, SyncPayload, SyncRequest, SyncResponse,
};
use rvaas_telemetry::{Counter, Histogram, Registry, TraceContext, TraceStage};
use rvaas_types::ClientId;

use crate::epoch::EpochStore;
use crate::error::ServiceError;
use crate::pool::VerificationService;

/// Per-client server-side session state.
#[derive(Debug, Default)]
struct ClientSession {
    /// Standing queries to re-verify when the state changes.
    subscriptions: BTreeSet<QuerySpec>,
}

/// A point-in-time copy of the reverification counters — a thin snapshot
/// view over the shared metric registry (`rvaas_reverified_total` /
/// `rvaas_reverify_skipped_total`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReverifyStats {
    /// Standing queries re-verified inside deltas.
    pub reverified: u64,
    /// Standing queries skipped because the delta could not affect them.
    pub skipped: u64,
}

/// Answers [`SyncRequest`]s from the epoch store.
#[derive(Debug)]
pub struct SyncServer {
    store: Arc<EpochStore>,
    session_id: u16,
    sessions: Mutex<BTreeMap<ClientId, ClientSession>>,
    reverified: Arc<Counter>,
    skipped: Arc<Counter>,
    reverify_latency: Arc<Histogram>,
}

impl SyncServer {
    /// Creates a server over `store` with the given session id (must be
    /// non-zero: clients use session 0 to mean "no session yet"), counting
    /// into a private registry.
    #[must_use]
    pub fn new(store: Arc<EpochStore>, session_id: u16) -> Self {
        SyncServer::with_registry(store, session_id, &Registry::new())
    }

    /// Like [`SyncServer::new`], but counting into the shared `registry`
    /// (typically the owning service's, so one scrape covers both).
    #[must_use]
    pub fn with_registry(store: Arc<EpochStore>, session_id: u16, registry: &Registry) -> Self {
        SyncServer {
            store,
            session_id: session_id.max(1),
            sessions: Mutex::new(BTreeMap::new()),
            reverified: registry.counter(
                "rvaas_reverified_total",
                "Standing queries re-verified inside sync deltas.",
            ),
            skipped: registry.counter(
                "rvaas_reverify_skipped_total",
                "Standing queries skipped because the delta could not affect them.",
            ),
            reverify_latency: registry.stage_histogram("sync.reverify"),
        }
    }

    /// Standing-query reverification activity so far.
    #[must_use]
    pub fn reverify_stats(&self) -> ReverifyStats {
        ReverifyStats {
            reverified: self.reverified.get(),
            skipped: self.skipped.get(),
        }
    }

    /// The server's session id.
    #[must_use]
    pub fn session_id(&self) -> u16 {
        self.session_id
    }

    /// Registers a standing query for `client`, to be re-verified inside
    /// every delta that invalidates published state. Also registers it in
    /// the epoch store's interest-space index, so future epochs select it
    /// exactly.
    pub fn subscribe(&self, client: ClientId, spec: QuerySpec) {
        self.store.register_interest(client, &spec);
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(client)
            .or_default()
            .subscriptions
            .insert(spec);
    }

    /// Answers one sync request. `service` is consulted to re-verify the
    /// client's standing queries when a delta is served.
    ///
    /// # Panics
    ///
    /// Panics if the service shuts down mid-reverification; the daemon's
    /// listener uses [`SyncServer::try_handle`].
    #[must_use]
    pub fn handle(&self, service: &VerificationService, request: &SyncRequest) -> SyncResponse {
        self.try_handle(service, request)
            .expect("sync reverification dropped")
    }

    /// Answers one raw sync frame, as read off a TCP connection: decodes the
    /// in-band message, dispatches it, and encodes the response.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::VersionMismatch`] when the peer speaks an
    /// unsupported sync-protocol major version (the daemon answers with a
    /// `SyncReject`), [`ServiceError::Codec`] for undecodable bytes or a
    /// message that is not a [`SyncRequest`], and propagates
    /// [`SyncServer::try_handle`] failures.
    pub fn handle_frame(
        &self,
        service: &VerificationService,
        frame: &[u8],
    ) -> Result<Vec<u8>, ServiceError> {
        match decode_inband(frame)? {
            InbandMessage::SyncRequest(request) => Ok(self.try_handle(service, &request)?.encode()),
            other => Err(ServiceError::Codec(rvaas_types::Error::codec(format!(
                "sync endpoint expects a SyncRequest, got {other:?}"
            )))),
        }
    }

    /// Fallible form of [`SyncServer::handle`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PoolUnavailable`] or
    /// [`ServiceError::QueryDropped`] when the worker pool cannot re-verify
    /// the client's standing queries.
    pub fn try_handle(
        &self,
        service: &VerificationService,
        request: &SyncRequest,
    ) -> Result<SyncResponse, ServiceError> {
        // The sync endpoint is this request's ingress: mint the trace here
        // (default-on) and echo it in the response's trailing field.
        let trace = TraceContext::mint();
        trace.event(
            TraceStage::IngressSync,
            u64::from(request.client.0),
            request.have_serial,
        );
        let current = self.store.current();
        // A client with no state, from another session, or whose serial the
        // history no longer covers gets the full digest set.
        let needs_reset = request.session != self.session_id || request.have_serial == 0;
        let delta = if needs_reset {
            None
        } else {
            self.store.delta_since(request.have_serial)
        };
        Ok(match delta {
            None => SyncResponse {
                session: self.session_id,
                serial: current.serial,
                payload: SyncPayload::Reset {
                    full: current.digests.iter().copied().collect(),
                },
                trace: trace.id.0,
            },
            Some(delta) if delta.is_empty() => SyncResponse {
                session: self.session_id,
                serial: current.serial,
                payload: SyncPayload::Unchanged,
                trace: trace.id.0,
            },
            Some(delta) => {
                let reverified = self.reverify(service, request.client, &delta.affected, trace)?;
                // The exact fan-out this session observed, folded into the
                // served epoch's provenance record.
                trace.event(
                    TraceStage::Reverify,
                    delta.to_serial,
                    reverified.len() as u64,
                );
                self.store
                    .record_reverify(delta.to_serial, reverified.len() as u64);
                SyncResponse {
                    session: self.session_id,
                    serial: delta.to_serial,
                    payload: SyncPayload::Delta {
                        added: delta.added,
                        removed: delta.removed,
                        reverified,
                    },
                    trace: trace.id.0,
                }
            }
        })
    }

    fn reverify(
        &self,
        service: &VerificationService,
        client: ClientId,
        affected: &AffectedQueries,
        trace: TraceContext,
    ) -> Result<Vec<ReverifiedQuery>, ServiceError> {
        let _span = self.reverify_latency.span_traced(trace.id);
        // The affected-set test: the window's stored per-epoch selections,
        // unioned by `delta_between`, intersected with this client's
        // subscriptions. Unselected standing queries provably kept their
        // verdict and are skipped entirely (not even a cache lookup). With an
        // exact selection the intersection walks the (small) selection, not
        // the subscription set, so serving a delta is O(affected) even at
        // large standing-query populations.
        let (total, workload): (u64, Vec<(ClientId, QuerySpec)>) = {
            let sessions = self
                .sessions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(session) = sessions.get(&client) else {
                return Ok(Vec::new());
            };
            let subs = &session.subscriptions;
            let workload = if !service.incremental_enabled() || affected.is_everything() {
                subs.iter().map(|spec| (client, spec.clone())).collect()
            } else {
                affected
                    .keys()
                    .iter()
                    .filter(|(owner, spec)| *owner == client && subs.contains(spec))
                    .cloned()
                    .collect()
            };
            (subs.len() as u64, workload)
        };
        self.reverified.add(workload.len() as u64);
        self.skipped.add(total - workload.len() as u64);
        // Submit everything before waiting so the worker answers the whole
        // subscription set as one batch (shared evaluator), instead of one
        // blocking round-trip per standing query.
        Ok(service
            .try_query_all(&workload)?
            .into_iter()
            .map(|response| ReverifiedQuery {
                spec: response.spec,
                result: response.result,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use rvaas::{LocationMap, NetworkSnapshot, VerifierConfig};
    use rvaas_client::{QueryResult, SyncSession};
    use rvaas_controlplane::benign_rules;
    use rvaas_openflow::{Action, FlowEntry, FlowMatch};
    use rvaas_topology::generators;
    use rvaas_types::{SimTime, SwitchId};

    fn setup(max_deltas: usize) -> (VerificationService, SyncServer, NetworkSnapshot) {
        let topology = generators::line(4, 2);
        let mut snapshot = NetworkSnapshot::new(SimTime::from_secs(1));
        for (switch, entry) in benign_rules(&topology) {
            snapshot.record_installed(switch, entry, SimTime::from_millis(1));
        }
        let mut config = ServiceConfig::new(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(&topology),
        })
        .with_workers(2);
        config.settings.max_delta_history = max_deltas;
        let service = VerificationService::new(topology, config);
        service.publish(&snapshot, SimTime::from_millis(1));
        let server = SyncServer::new(service.store(), 42);
        (service, server, snapshot)
    }

    fn churn(snapshot: &mut NetworkSnapshot, round: u32) {
        snapshot.record_installed(
            SwitchId(1),
            FlowEntry::new(3, FlowMatch::to_ip(0x2000 + round), vec![Action::Drop]),
            SimTime::from_millis(u64::from(10 + round)),
        );
    }

    #[test]
    fn fresh_client_resets_then_rides_deltas() {
        let (service, server, mut snapshot) = setup(16);
        let mut session = SyncSession::new();
        let client = ClientId(1);

        let response = server.handle(&service, &session.request(client));
        assert!(matches!(response.payload, SyncPayload::Reset { .. }));
        session.apply(&response).unwrap();
        assert_eq!(session.serial(), service.current_serial());
        assert_eq!(session.digests(), &service.store().current().digests);

        // No change: unchanged.
        let response = server.handle(&service, &session.request(client));
        assert_eq!(response.payload, SyncPayload::Unchanged);
        session.apply(&response).unwrap();

        // One change: a delta that brings the mirror up to date.
        churn(&mut snapshot, 1);
        service.publish(&snapshot, SimTime::from_millis(11));
        let response = server.handle(&service, &session.request(client));
        assert!(matches!(response.payload, SyncPayload::Delta { .. }));
        session.apply(&response).unwrap();
        assert_eq!(session.serial(), service.current_serial());
        assert_eq!(session.digests(), &service.store().current().digests);
    }

    #[test]
    fn evicted_history_falls_back_to_reset() {
        let (service, server, mut snapshot) = setup(2);
        let mut session = SyncSession::new();
        let client = ClientId(1);
        session
            .apply(&server.handle(&service, &session.request(client)))
            .unwrap();
        let old_serial = session.serial();

        // Churn far past the retained delta window.
        for round in 0..6 {
            churn(&mut snapshot, round);
            service.publish(&snapshot, SimTime::from_millis(u64::from(20 + round)));
        }
        assert!(service.store().delta_since(old_serial).is_none());
        let response = server.handle(&service, &session.request(client));
        assert!(
            matches!(response.payload, SyncPayload::Reset { .. }),
            "evicted history must force a reset"
        );
        session.apply(&response).unwrap();
        assert_eq!(session.digests(), &service.store().current().digests);
    }

    #[test]
    fn session_mismatch_forces_reset() {
        let (service, server, _snapshot) = setup(16);
        let mut session = SyncSession::new();
        session
            .apply(&server.handle(&service, &session.request(ClientId(1))))
            .unwrap();
        // A server restart shows up as a new session id.
        let restarted = SyncServer::new(service.store(), 43);
        let response = restarted.handle(&service, &session.request(ClientId(1)));
        assert!(matches!(response.payload, SyncPayload::Reset { .. }));
        assert_eq!(response.session, 43);
    }

    #[test]
    fn deltas_reverify_subscribed_queries() {
        let (service, server, mut snapshot) = setup(16);
        let client = ClientId(1);
        server.subscribe(client, QuerySpec::Isolation);
        let mut session = SyncSession::new();
        session
            .apply(&server.handle(&service, &session.request(client)))
            .unwrap();

        churn(&mut snapshot, 1);
        service.publish(&snapshot, SimTime::from_millis(11));
        let response = server.handle(&service, &session.request(client));
        let SyncPayload::Delta { reverified, .. } = &response.payload else {
            panic!("expected a delta, got {response:?}");
        };
        assert_eq!(reverified.len(), 1);
        assert_eq!(reverified[0].spec, QuerySpec::Isolation);
        assert!(matches!(
            reverified[0].result,
            QueryResult::IsolationStatus { .. }
        ));

        // The response echoes its flight-recorder trace, whose chain shows
        // the ingress and the exact reverification fan-out...
        assert_ne!(response.trace, 0, "sync ingress mints a trace");
        let chain =
            rvaas_telemetry::trace::recorder().chain(rvaas_telemetry::TraceId(response.trace));
        assert!(chain
            .iter()
            .any(|e| e.stage == rvaas_telemetry::TraceStage::IngressSync && e.a == 1));
        assert!(chain
            .iter()
            .any(|e| e.stage == rvaas_telemetry::TraceStage::Reverify
                && e.a == response.serial
                && e.b == 1));
        // ...and the served epoch's provenance accumulates that fan-out.
        let prov = service
            .store()
            .provenance(response.serial)
            .expect("fresh epoch has provenance");
        assert_eq!(prov.reverified, 1);
        assert_eq!(prov.reverify_sessions, 1);
    }

    #[test]
    fn unaffected_standing_queries_are_skipped() {
        let (service, server, mut snapshot) = setup(16);
        assert!(service.incremental_enabled());
        // line(4,2): client 1 owns hosts 1 and 3, client 2 owns 2 and 4.
        let c1_ips: Vec<u32> = service
            .topology()
            .hosts_of_client(ClientId(1))
            .iter()
            .map(|h| h.ip)
            .collect();
        server.subscribe(ClientId(1), QuerySpec::Isolation);
        server.subscribe(ClientId(2), QuerySpec::Isolation);
        let mut session1 = SyncSession::new();
        let mut session2 = SyncSession::new();
        session1
            .apply(&server.handle(&service, &session1.request(ClientId(1))))
            .unwrap();
        session2
            .apply(&server.handle(&service, &session2.request(ClientId(2))))
            .unwrap();

        // Churn pinned to client 1's own (src, dst) pair: client 2's
        // isolation verdict provably cannot change.
        snapshot.record_installed(
            SwitchId(2),
            FlowEntry::new(
                400,
                FlowMatch::from_ip(c1_ips[0])
                    .field(rvaas_types::Field::IpDst, u64::from(c1_ips[1])),
                vec![Action::Drop],
            ),
            SimTime::from_millis(20),
        );
        service.publish(&snapshot, SimTime::from_millis(20));

        let response1 = server.handle(&service, &session1.request(ClientId(1)));
        let SyncPayload::Delta { reverified, .. } = &response1.payload else {
            panic!("expected a delta for client 1, got {response1:?}");
        };
        assert_eq!(reverified.len(), 1, "client 1's own traffic changed");

        let response2 = server.handle(&service, &session2.request(ClientId(2)));
        let SyncPayload::Delta { reverified, .. } = &response2.payload else {
            panic!("expected a delta for client 2, got {response2:?}");
        };
        assert!(
            reverified.is_empty(),
            "client 2 must be skipped, got {reverified:?}"
        );
        let stats = server.reverify_stats();
        assert_eq!(stats.reverified, 1);
        assert_eq!(stats.skipped, 1);
    }

    #[test]
    fn delta_transfers_fewer_bytes_than_reset_under_small_churn() {
        let (service, server, mut snapshot) = setup(16);
        let client = ClientId(1);
        let mut session = SyncSession::new();
        session
            .apply(&server.handle(&service, &session.request(client)))
            .unwrap();
        let rule_count = session.digests().len();

        // ~10% churn.
        let changes = (rule_count / 10).max(1) as u32;
        for round in 0..changes {
            churn(&mut snapshot, round);
        }
        service.publish(&snapshot, SimTime::from_millis(30));

        let delta_response = server.handle(&service, &session.request(client));
        assert!(matches!(delta_response.payload, SyncPayload::Delta { .. }));
        let reset_equivalent = SyncResponse {
            session: delta_response.session,
            serial: delta_response.serial,
            payload: SyncPayload::Reset {
                full: service.store().current().digests.iter().copied().collect(),
            },
            trace: 0,
        };
        assert!(
            delta_response.encoded_len() < reset_equivalent.encoded_len(),
            "delta ({} B) must be smaller than a full resend ({} B)",
            delta_response.encoded_len(),
            reset_equivalent.encoded_len()
        );
        session.apply(&delta_response).unwrap();
        assert_eq!(session.digests(), &service.store().current().digests);
    }

    #[test]
    fn undecodable_frames_are_typed_codec_errors() {
        let (service, server, _snapshot) = setup(8);
        assert!(matches!(
            server.handle_frame(&service, b"\xffnot a sync frame"),
            Err(ServiceError::Codec(_))
        ));
        assert!(matches!(
            server.handle_frame(&service, &[]),
            Err(ServiceError::Codec(_))
        ));
        // A well-formed in-band message of the wrong kind is rejected the
        // same way, not dispatched.
        let stray = rvaas_client::AuthRequest {
            query: rvaas_types::QueryId(1),
            nonce: 2,
            requester: rvaas_types::ClientId(3),
        };
        assert!(matches!(
            server.handle_frame(&service, &stray.encode()),
            Err(ServiceError::Codec(_))
        ));
    }

    #[test]
    fn unsupported_sync_version_is_a_structured_mismatch() {
        let (service, server, _snapshot) = setup(8);
        let mut frame = SyncSession::new()
            .request(rvaas_types::ClientId(1))
            .encode();
        frame[1] = 0xf0; // foreign major version in the version byte
        let err = server.handle_frame(&service, &frame).unwrap_err();
        let ServiceError::VersionMismatch { supported, got } = err else {
            panic!("expected a version mismatch, got {err:?}");
        };
        assert_eq!(supported, rvaas_client::SYNC_PROTOCOL_VERSION);
        assert_eq!(got, 0xf0);
    }
}
