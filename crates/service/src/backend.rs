//! The adapter plugging the service plane into the RVaaS controller.
//!
//! [`ServiceBackend`] implements [`rvaas::AnalysisBackend`]: the controller
//! publishes every snapshot change as a new epoch and delegates each query
//! to the worker pool, so logical analysis runs on the service plane's
//! threads (with batching and caching) instead of inline in the simulation
//! event handler.

use rvaas::{AnalysisBackend, NetworkSnapshot};
use rvaas_client::{QueryResult, QuerySpec};
use rvaas_types::{ClientId, SimTime};

use crate::config::ServiceConfig;
use crate::pool::VerificationService;
use crate::sync::SyncServer;

/// An [`AnalysisBackend`] backed by a [`VerificationService`].
#[derive(Debug)]
pub struct ServiceBackend {
    service: VerificationService,
    /// Minimum simulated time between controller-driven epoch publishes.
    /// Publishing an epoch costs a full snapshot clone + digest pass, so
    /// doing it on *every* monitor event would make churn quadratic again;
    /// suppressed publishes set [`Self::dirty`] and are caught up lazily at
    /// query time, which keeps answers exact.
    min_publish_interval: SimTime,
    last_published_at: Option<SimTime>,
    dirty: bool,
}

impl ServiceBackend {
    /// Starts a service plane over `topology` and wraps it as a backend.
    #[must_use]
    pub fn new(topology: rvaas_topology::Topology, config: ServiceConfig) -> Self {
        Self::from_service(VerificationService::new(topology, config))
    }

    /// Wraps an already running service.
    #[must_use]
    pub fn from_service(service: VerificationService) -> Self {
        ServiceBackend {
            service,
            min_publish_interval: SimTime::from_millis(1),
            last_published_at: None,
            dirty: false,
        }
    }

    /// Overrides the epoch publish debounce interval (builder style).
    /// `SimTime::ZERO` publishes on every monitor event.
    #[must_use]
    pub fn with_publish_interval(mut self, interval: SimTime) -> Self {
        self.min_publish_interval = interval;
        self
    }

    /// The underlying service (stats, sync store, direct queries).
    #[must_use]
    pub fn service(&self) -> &VerificationService {
        &self.service
    }

    /// A sync server sharing this backend's epoch store.
    #[must_use]
    pub fn sync_server(&self, session_id: u16) -> SyncServer {
        SyncServer::new(self.service.store(), session_id)
    }

    fn publish_now(&mut self, snapshot: &NetworkSnapshot, at: SimTime) {
        self.service.publish(snapshot, at);
        self.last_published_at = Some(at);
        self.dirty = false;
    }
}

impl AnalysisBackend for ServiceBackend {
    fn publish(&mut self, snapshot: &NetworkSnapshot, at: SimTime) {
        let due = match self.last_published_at {
            None => true,
            Some(last) => at >= last + self.min_publish_interval,
        };
        if due {
            self.publish_now(snapshot, at);
        } else {
            self.dirty = true;
        }
    }

    fn answer(
        &mut self,
        snapshot: &NetworkSnapshot,
        client: ClientId,
        spec: &QuerySpec,
    ) -> QueryResult {
        // Catch up before answering: a query may arrive before the first
        // monitor event, or after publishes the debounce suppressed.
        let epoch = self.service.store().current();
        if epoch.serial == 0 || self.dirty || epoch.snapshot.last_update() < snapshot.last_update()
        {
            self.publish_now(snapshot, snapshot.last_update());
        }
        self.service.query(client, spec.clone()).result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas::{InlineBackend, LocationMap, LogicalVerifier, VerifierConfig};
    use rvaas_controlplane::benign_rules;
    use rvaas_topology::generators;

    #[test]
    fn service_backend_agrees_with_inline_backend() {
        let topology = generators::line(6, 2);
        let mut snapshot = NetworkSnapshot::new(SimTime::from_secs(1));
        for (switch, entry) in benign_rules(&topology) {
            snapshot.record_installed(switch, entry, SimTime::from_millis(1));
        }
        let verifier_config = VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(&topology),
        };
        let mut inline = InlineBackend::new(LogicalVerifier::new(
            topology.clone(),
            verifier_config.clone(),
        ));
        let mut service = ServiceBackend::new(
            topology.clone(),
            ServiceConfig::new(verifier_config).with_workers(3),
        );
        for client in [ClientId(1), ClientId(2)] {
            for spec in [
                QuerySpec::ReachableDestinations,
                QuerySpec::ReachingSources,
                QuerySpec::Isolation,
                QuerySpec::GeoLocation,
                QuerySpec::Neutrality,
            ] {
                assert_eq!(
                    service.answer(&snapshot, client, &spec),
                    inline.answer(&snapshot, client, &spec),
                    "backends diverged on {client:?}/{spec:?}"
                );
            }
        }
        // The lazy catch-up publish happened exactly once.
        assert_eq!(service.service().stats().epochs_published, 1);
    }

    #[test]
    fn publish_debounce_bounds_epochs_but_queries_stay_exact() {
        let topology = generators::line(4, 2);
        let verifier_config = VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(&topology),
        };
        let mut backend = ServiceBackend::new(
            topology.clone(),
            ServiceConfig::new(verifier_config.clone()).with_workers(1),
        )
        .with_publish_interval(SimTime::from_millis(10));
        // A burst of monitor events within one debounce window publishes
        // once, not once per event.
        let mut snapshot = NetworkSnapshot::new(SimTime::from_secs(1));
        for (i, (switch, entry)) in benign_rules(&topology).into_iter().enumerate() {
            let at = SimTime::from_micros(i as u64);
            snapshot.record_installed(switch, entry, at);
            backend.publish(&snapshot, at);
        }
        assert_eq!(backend.service().stats().epochs_published, 1);

        // The suppressed publishes are caught up before answering, so the
        // result matches an inline verifier over the full snapshot.
        let verifier = LogicalVerifier::new(topology, verifier_config);
        assert_eq!(
            backend.answer(&snapshot, ClientId(1), &QuerySpec::Isolation),
            verifier.answer(&snapshot, ClientId(1), &QuerySpec::Isolation),
        );
        assert_eq!(backend.service().stats().epochs_published, 2);
    }
}
