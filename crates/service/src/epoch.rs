//! Epoch-published snapshots: immutable, serially numbered freezes of the
//! monitor's [`NetworkSnapshot`], swapped atomically so query workers never
//! block the publisher (and vice versa).
//!
//! The [`EpochStore`] also retains a bounded history of per-epoch deltas
//! (added/removed flow-entry digests) so the sync protocol can answer
//! "what changed since serial S" without shipping full state; when the
//! requested serial has been evicted the store reports `None` and the sync
//! layer falls back to a full reset, mirroring RTR cache-reset semantics.

use std::collections::{BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock};

use rvaas::NetworkSnapshot;
use rvaas_client::FlowDigest;
use rvaas_openflow::FlowEntry;
use rvaas_types::{SimTime, SwitchId};

/// Computes the digest identifying one installed flow entry.
///
/// Stats and cookies are deliberately excluded: two entries that match and
/// act identically are the same rule as far as verification is concerned.
#[must_use]
pub fn digest_entry(switch: SwitchId, entry: &FlowEntry) -> FlowDigest {
    // DefaultHasher::new() is deterministic (fixed-key SipHash), which is all
    // the simulation needs; a deployment would swap in a keyed or
    // cryptographic digest here.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    switch.hash(&mut hasher);
    entry.priority.hash(&mut hasher);
    entry.flow_match.hash(&mut hasher);
    entry.actions.hash(&mut hasher);
    FlowDigest(hasher.finish())
}

/// Digests of every entry in a snapshot.
#[must_use]
pub fn digest_snapshot(snapshot: &NetworkSnapshot) -> BTreeSet<FlowDigest> {
    snapshot
        .tables()
        .flat_map(|(switch, entries)| entries.iter().map(move |e| digest_entry(switch, e)))
        .collect()
}

/// One published, immutable epoch of network state.
#[derive(Debug)]
pub struct SnapshotEpoch {
    /// Monotonically increasing serial (the first published epoch is 1;
    /// serial 0 means "no state", as in the sync protocol).
    pub serial: u64,
    /// The frozen snapshot queries are answered against.
    pub snapshot: NetworkSnapshot,
    /// Digest of every installed entry, for delta computation.
    pub digests: BTreeSet<FlowDigest>,
    /// When the epoch was published (simulation time of the last update).
    pub published_at: SimTime,
}

/// The digest-level difference between two consecutive epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDelta {
    /// Serial this delta starts from.
    pub from_serial: u64,
    /// Serial this delta produces.
    pub to_serial: u64,
    /// Digests present in `to` but not `from`.
    pub added: Vec<FlowDigest>,
    /// Digests present in `from` but not `to`.
    pub removed: Vec<FlowDigest>,
}

/// The atomically swapped epoch store.
///
/// Readers grab the current `Arc<SnapshotEpoch>` under a briefly held read
/// lock and then work lock-free on the frozen epoch; the publisher builds
/// the next epoch off to the side and swaps the `Arc` in one write-lock
/// acquisition. In-flight queries keep their old epoch alive through the
/// `Arc` for as long as they need it.
#[derive(Debug)]
pub struct EpochStore {
    current: RwLock<Arc<SnapshotEpoch>>,
    deltas: Mutex<VecDeque<EpochDelta>>,
    max_deltas: usize,
}

impl EpochStore {
    /// Creates a store holding an empty epoch 0 and retaining up to
    /// `max_deltas` per-epoch deltas for sync.
    #[must_use]
    pub fn new(max_deltas: usize) -> Self {
        EpochStore {
            current: RwLock::new(Arc::new(SnapshotEpoch {
                serial: 0,
                snapshot: NetworkSnapshot::default(),
                digests: BTreeSet::new(),
                published_at: SimTime::ZERO,
            })),
            deltas: Mutex::new(VecDeque::new()),
            max_deltas,
        }
    }

    /// The current epoch. Never blocks the publisher for longer than the
    /// `Arc` clone.
    #[must_use]
    pub fn current(&self) -> Arc<SnapshotEpoch> {
        self.current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Freezes `snapshot` as the next epoch and swaps it in, recording the
    /// delta against the previous epoch. Returns the new serial.
    ///
    /// The write lock is held across the read–diff–swap so concurrent
    /// publishers serialise: each epoch gets a unique serial and a delta
    /// chained to its true predecessor.
    pub fn publish(&self, snapshot: NetworkSnapshot, at: SimTime) -> u64 {
        let digests = digest_snapshot(&snapshot);
        let mut current = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let previous = Arc::clone(&current);
        let added: Vec<FlowDigest> = digests.difference(&previous.digests).copied().collect();
        let removed: Vec<FlowDigest> = previous.digests.difference(&digests).copied().collect();
        let serial = previous.serial + 1;
        {
            let mut deltas = self
                .deltas
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            deltas.push_back(EpochDelta {
                from_serial: previous.serial,
                to_serial: serial,
                added,
                removed,
            });
            while deltas.len() > self.max_deltas {
                deltas.pop_front();
            }
        }
        *current = Arc::new(SnapshotEpoch {
            serial,
            snapshot,
            digests,
            published_at: at,
        });
        serial
    }

    /// The combined delta from `since_serial` to the current serial, or
    /// `None` when any intermediate delta has been evicted (the caller must
    /// fall back to a full reset). A request for the current serial returns
    /// an empty delta.
    #[must_use]
    pub fn delta_since(&self, since_serial: u64) -> Option<EpochDelta> {
        let current = self.current();
        if since_serial > current.serial {
            return None;
        }
        if since_serial == current.serial {
            return Some(EpochDelta {
                from_serial: since_serial,
                to_serial: since_serial,
                added: Vec::new(),
                removed: Vec::new(),
            });
        }
        let deltas = self
            .deltas
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // The retained window must cover every epoch in (since, current].
        let mut added: BTreeSet<FlowDigest> = BTreeSet::new();
        let mut removed: BTreeSet<FlowDigest> = BTreeSet::new();
        let mut next_expected = since_serial;
        for delta in deltas.iter().filter(|d| d.from_serial >= since_serial) {
            if delta.from_serial != next_expected {
                return None;
            }
            next_expected = delta.to_serial;
            for d in &delta.added {
                // An add that cancels an earlier remove is a no-op overall.
                if !removed.remove(d) {
                    added.insert(*d);
                }
            }
            for d in &delta.removed {
                if !added.remove(d) {
                    removed.insert(*d);
                }
            }
        }
        if next_expected != current.serial {
            return None;
        }
        Some(EpochDelta {
            from_serial: since_serial,
            to_serial: current.serial,
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_openflow::{Action, FlowMatch};
    use rvaas_types::PortId;

    fn entry(dst: u32) -> FlowEntry {
        FlowEntry::new(10, FlowMatch::to_ip(dst), vec![Action::Output(PortId(1))])
    }

    fn snapshot_with(dsts: &[u32]) -> NetworkSnapshot {
        let mut snap = NetworkSnapshot::new(SimTime::from_secs(1));
        for dst in dsts {
            snap.record_installed(SwitchId(1), entry(*dst), SimTime::from_millis(1));
        }
        snap
    }

    #[test]
    fn digests_ignore_stats_and_cookie_but_not_actions() {
        let a = entry(5);
        let mut b = entry(5);
        b.stats.packets = 99;
        b.cookie = rvaas_types::FlowCookie(7);
        assert_eq!(digest_entry(SwitchId(1), &a), digest_entry(SwitchId(1), &b));
        let c = FlowEntry::new(10, FlowMatch::to_ip(5), vec![Action::Drop]);
        assert_ne!(digest_entry(SwitchId(1), &a), digest_entry(SwitchId(1), &c));
        assert_ne!(digest_entry(SwitchId(2), &a), digest_entry(SwitchId(1), &a));
    }

    #[test]
    fn publish_advances_serial_and_records_delta() {
        let store = EpochStore::new(8);
        assert_eq!(store.current().serial, 0);
        let s1 = store.publish(snapshot_with(&[1, 2]), SimTime::from_millis(1));
        assert_eq!(s1, 1);
        let s2 = store.publish(snapshot_with(&[2, 3]), SimTime::from_millis(2));
        assert_eq!(s2, 2);
        assert_eq!(store.current().serial, 2);

        let delta = store.delta_since(1).expect("retained");
        assert_eq!(delta.to_serial, 2);
        assert_eq!(delta.added.len(), 1, "rule for dst 3 added");
        assert_eq!(delta.removed.len(), 1, "rule for dst 1 removed");

        let empty = store.delta_since(2).expect("current serial");
        assert!(empty.added.is_empty() && empty.removed.is_empty());
    }

    #[test]
    fn cancelling_changes_collapse_across_epochs() {
        let store = EpochStore::new(8);
        store.publish(snapshot_with(&[1]), SimTime::from_millis(1));
        store.publish(snapshot_with(&[1, 2]), SimTime::from_millis(2));
        store.publish(snapshot_with(&[1]), SimTime::from_millis(3));
        // dst 2 was added then removed: net delta from serial 1 is empty.
        let delta = store.delta_since(1).expect("retained");
        assert!(delta.added.is_empty());
        assert!(delta.removed.is_empty());
    }

    #[test]
    fn evicted_history_forces_reset() {
        let store = EpochStore::new(2);
        for i in 0..5u32 {
            store.publish(snapshot_with(&[i]), SimTime::from_millis(u64::from(i)));
        }
        // Only the last two deltas are retained: serial 1 is unanswerable.
        assert!(store.delta_since(1).is_none());
        assert!(store.delta_since(3).is_some());
        // A serial from the future is also unanswerable.
        assert!(store.delta_since(99).is_none());
    }

    #[test]
    fn epoch_swap_under_concurrent_readers() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let store = Arc::new(EpochStore::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last_serial = 0u64;
                let mut observed = 0u64;
                loop {
                    let epoch = store.current();
                    // Serials must be monotone from any single reader's
                    // point of view, and the frozen snapshot must always be
                    // internally consistent with its digest set.
                    assert!(epoch.serial >= last_serial, "serial went backwards");
                    assert_eq!(digest_snapshot(&epoch.snapshot), epoch.digests);
                    last_serial = epoch.serial;
                    observed += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                observed
            }));
        }
        for i in 0..200u32 {
            let dsts: Vec<u32> = (0..=i % 7).collect();
            store.publish(snapshot_with(&dsts), SimTime::from_millis(u64::from(i)));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(observed > 0, "reader never observed an epoch");
        }
        assert_eq!(store.current().serial, 200);
    }
}
