//! Epoch-published snapshots: immutable, serially numbered freezes of the
//! monitor's [`NetworkSnapshot`], swapped atomically so query workers never
//! block the publisher (and vice versa).
//!
//! The [`EpochStore`] retains a bounded history of per-epoch deltas. Each
//! delta carries three views of the same change set:
//!
//! * **digest-level** added/removed [`FlowDigest`]s — what the RTR-style
//!   sync protocol ships to clients;
//! * **rule-level** added/removed `(switch, entry)` pairs — what the worker
//!   pool's [`IncrementalModel`]s apply in place instead of rebuilding the
//!   HSA model from scratch (added rules preserve per-switch arrival order,
//!   so equal-priority tie-breaking matches a full rebuild);
//! * the [`ChangedRegion`] — the affected header space computed by a shadow
//!   incremental model under the publish lock, which the cache and the sync
//!   server use to re-verify only the standing queries a delta can touch.
//!
//! When the requested serial has been evicted the store reports `None` and
//! the consumers fall back to a full reset / rebuild, mirroring RTR
//! cache-reset semantics.
//!
//! One deliberate approximation: digest-level cancellation across epochs
//! (add-then-remove collapses to nothing) means a rule removed and later
//! re-added is kept at its *original* arrival position by incremental
//! appliers, while a from-scratch rebuild would see it at the table end.
//! The two orders can only differ observably for *overlapping
//! equal-priority rules with different actions*, whose relative order is
//! implementation-defined on real switches to begin with.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock};

use rvaas::{
    AffectedQueries, ChangedRegion, IncrementalModel, InterestIndex, NetworkSnapshot,
    QueryFootprint, RuleChange,
};
use rvaas_client::{FlowDigest, QuerySpec};
use rvaas_openflow::FlowEntry;
use rvaas_telemetry::{TraceContext, TraceId, TraceStage};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, SimTime, SwitchId};

use crate::error::ServiceError;

/// How many [`EpochProvenance`] records the store retains. Bounded like the
/// flight recorder: old epochs age out, recent ones stay queryable.
pub const PROVENANCE_CAPACITY: usize = 1024;

/// Computes the digest identifying one installed flow entry.
///
/// Stats and cookies are deliberately excluded: two entries that match and
/// act identically are the same rule as far as verification is concerned.
#[must_use]
pub fn digest_entry(switch: SwitchId, entry: &FlowEntry) -> FlowDigest {
    // DefaultHasher::new() is deterministic (fixed-key SipHash), which is all
    // the simulation needs; a deployment would swap in a keyed or
    // cryptographic digest here.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    switch.hash(&mut hasher);
    entry.priority.hash(&mut hasher);
    entry.flow_match.hash(&mut hasher);
    entry.actions.hash(&mut hasher);
    FlowDigest(hasher.finish())
}

/// Digests of every entry in a snapshot.
#[must_use]
pub fn digest_snapshot(snapshot: &NetworkSnapshot) -> BTreeSet<FlowDigest> {
    snapshot
        .tables()
        .flat_map(|(switch, entries)| entries.iter().map(move |e| digest_entry(switch, e)))
        .collect()
}

/// One published, immutable epoch of network state.
#[derive(Debug)]
pub struct SnapshotEpoch {
    /// Monotonically increasing serial (the first published epoch is 1;
    /// serial 0 means "no state", as in the sync protocol).
    pub serial: u64,
    /// The frozen snapshot queries are answered against.
    pub snapshot: NetworkSnapshot,
    /// Digest of every installed entry, for delta computation.
    pub digests: BTreeSet<FlowDigest>,
    /// Digest-indexed entries, so the next publish can resolve removed
    /// digests back to concrete rules without re-hashing this snapshot.
    pub rules: BTreeMap<FlowDigest, (SwitchId, FlowEntry)>,
    /// When the epoch was published (simulation time of the last update).
    pub published_at: SimTime,
}

impl SnapshotEpoch {
    /// An order-independent FNV-1a fold over the epoch's digest set: one
    /// `u64` that identifies the *content* of the epoch (two epochs with the
    /// same installed rules share it regardless of publish path). The same
    /// constants as the daemon's `/v1/epoch` body, so provenance records and
    /// the HTTP surface agree.
    #[must_use]
    pub fn content_digest(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for d in &self.digests {
            for byte in d.0.to_be_bytes() {
                acc ^= u64::from(byte);
                acc = acc.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        acc
    }
}

/// One entry of the epoch provenance log: who published an epoch, what it
/// changed, which standing queries the interest index selected, and how much
/// re-verification it actually triggered. The flight-recorder trace id links
/// the record to the publish's event chain while it is still in the ring.
#[derive(Debug, Clone)]
pub struct EpochProvenance {
    /// Serial of the published epoch.
    pub serial: u64,
    /// Content digest of the epoch (see [`SnapshotEpoch::content_digest`]).
    pub digest: u64,
    /// Digest-level additions in the delta.
    pub added: usize,
    /// Digest-level removals in the delta.
    pub removed: usize,
    /// Rule-level delta size (added + removed entries).
    pub delta_rules: usize,
    /// Standing queries the interest-space index selected, when bounded.
    pub affected_queries: usize,
    /// True when the change conservatively affects every standing query
    /// (bulk rebuild / unbounded region); `affected_queries` is then the
    /// registration count at publish time.
    pub affected_everything: bool,
    /// Whether the shadow model took the bulk-rebuild path.
    pub bulk_rebuild: bool,
    /// Simulation time the epoch was published.
    pub published_at: SimTime,
    /// Flight-recorder trace id of the publish event chain.
    pub trace: TraceId,
    /// Standing queries actually re-verified so far by sync sessions
    /// serving this epoch (accumulated via [`EpochStore::record_reverify`]).
    pub reverified: u64,
    /// Number of sync sessions that contributed to `reverified`.
    pub reverify_sessions: u64,
}

/// The difference between two epochs, at digest, rule and header-space
/// granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDelta {
    /// Serial this delta starts from.
    pub from_serial: u64,
    /// Serial this delta produces.
    pub to_serial: u64,
    /// Digests present in `to` but not `from`.
    pub added: Vec<FlowDigest>,
    /// Digests present in `from` but not `to`.
    pub removed: Vec<FlowDigest>,
    /// The added entries, in per-switch arrival order.
    pub added_rules: Vec<(SwitchId, FlowEntry)>,
    /// The removed entries (order irrelevant).
    pub removed_rules: Vec<(SwitchId, FlowEntry)>,
    /// Affected header region of the change (union over the covered epochs).
    pub changed: ChangedRegion,
    /// The standing queries the interest-space index selected for this
    /// change, frozen at publish time (union over the covered epochs). Using
    /// the *stored* per-epoch selections — instead of re-querying the index
    /// later — keeps lagging syncs sound: the selection reflects each
    /// query's footprint as it was at that epoch, unaffected by refinements
    /// that happened since.
    pub affected: AffectedQueries,
}

impl EpochDelta {
    fn empty(serial: u64) -> Self {
        EpochDelta {
            from_serial: serial,
            to_serial: serial,
            added: Vec::new(),
            removed: Vec::new(),
            added_rules: Vec::new(),
            removed_rules: Vec::new(),
            changed: ChangedRegion::default(),
            affected: AffectedQueries::default(),
        }
    }

    /// True when the delta carries no change.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// The delta as an ordered [`RuleChange`] batch: removals first (so a
    /// modify repairs priorities correctly), then installs in arrival order.
    /// This is what [`IncrementalModel::apply`] consumes.
    #[must_use]
    pub fn rule_changes(&self) -> Vec<RuleChange> {
        self.removed_rules
            .iter()
            .map(|(switch, entry)| RuleChange::removed(*switch, entry.clone()))
            .chain(
                self.added_rules
                    .iter()
                    .map(|(switch, entry)| RuleChange::installed(*switch, entry.clone())),
            )
            .collect()
    }
}

/// What one [`EpochStore::publish`] produced: the new serial plus the
/// affected header region of the change, for targeted invalidation.
#[derive(Debug, Clone)]
pub struct Published {
    /// The serial of the freshly published epoch.
    pub serial: u64,
    /// The affected header region relative to the previous epoch.
    pub changed: ChangedRegion,
    /// Rule-level size of the delta (added + removed entries).
    pub delta_rules: usize,
    /// Whether the shadow model took the bulk-rebuild path (delta too large
    /// for per-rule region tracking to pay off), reporting an unbounded
    /// changed region.
    pub bulk_rebuild: bool,
    /// The standing queries the interest-space index selected for this epoch
    /// (computed under the publish lock, before the swap). The cache and the
    /// sync server invalidate/re-verify exactly these.
    pub affected: AffectedQueries,
    /// Flight-recorder trace id of the publish event chain; downstream
    /// consumers (cache carry-forward, re-verification) append to it.
    pub trace: TraceId,
}

/// The atomically swapped epoch store.
///
/// Readers grab the current `Arc<SnapshotEpoch>` under a briefly held read
/// lock and then work lock-free on the frozen epoch; the publisher builds
/// the next epoch off to the side and swaps the `Arc` in one write-lock
/// acquisition. In-flight queries keep their old epoch alive through the
/// `Arc` for as long as they need it.
#[derive(Debug)]
pub struct EpochStore {
    current: RwLock<Arc<SnapshotEpoch>>,
    deltas: Mutex<VecDeque<EpochDelta>>,
    /// Shadow incremental model mirroring the published state; computes the
    /// affected header region of each delta in `O(delta)` under the publish
    /// lock. Wiring-free (an empty topology): exposed-region computation
    /// only needs the per-switch rule lists.
    shadow: Mutex<IncrementalModel>,
    /// The interest-space index over the registered standing queries.
    /// Advanced under the publish lock (widening affected interests before
    /// the new epoch becomes visible); registered/refined concurrently by
    /// the worker pool and the sync server.
    interest: Mutex<InterestIndex>,
    /// Bounded provenance log, newest at the back; queryable by serial for
    /// as long as the record has not aged out.
    provenance: Mutex<VecDeque<EpochProvenance>>,
    max_deltas: usize,
}

impl EpochStore {
    /// Creates a store holding an empty epoch 0 and retaining up to
    /// `max_deltas` per-epoch deltas for sync.
    #[must_use]
    pub fn new(max_deltas: usize) -> Self {
        EpochStore {
            current: RwLock::new(Arc::new(SnapshotEpoch {
                serial: 0,
                snapshot: NetworkSnapshot::default(),
                digests: BTreeSet::new(),
                rules: BTreeMap::new(),
                published_at: SimTime::ZERO,
            })),
            deltas: Mutex::new(VecDeque::new()),
            shadow: Mutex::new(IncrementalModel::new(Topology::new())),
            interest: Mutex::new(InterestIndex::new(Topology::new())),
            provenance: Mutex::new(VecDeque::new()),
            max_deltas,
        }
    }

    fn interest_lock(&self) -> std::sync::MutexGuard<'_, InterestIndex> {
        self.interest
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Supplies the trusted deployment knowledge the interest-space index
    /// derives default interests from. Without it every registration is
    /// conservative (affected by any change). Call before registering.
    pub fn attach_interest_topology(&self, topology: Topology) {
        self.interest_lock().set_topology(topology);
    }

    /// Mirrors the interest-space index's activity into `registry` (under
    /// `rvaas_interest_*`).
    pub fn attach_interest_telemetry(&self, registry: &rvaas_telemetry::Registry) {
        self.interest_lock().attach_telemetry(registry);
    }

    /// Registers a standing query in the interest-space index (idempotent).
    pub fn register_interest(&self, client: ClientId, spec: &QuerySpec) -> bool {
        self.interest_lock().register(client, spec)
    }

    /// Removes a standing query from the interest-space index.
    pub fn deregister_interest(&self, client: ClientId, spec: &QuerySpec) -> bool {
        self.interest_lock().deregister(client, spec)
    }

    /// Narrows a standing query's interest to the traversal footprint an
    /// evaluation against epoch `serial` recorded (ignored when stale).
    pub fn refine_interest(
        &self,
        client: ClientId,
        spec: &QuerySpec,
        serial: u64,
        footprint: &QueryFootprint,
    ) {
        self.interest_lock().refine(client, spec, serial, footprint);
    }

    /// Number of standing queries registered in the interest-space index.
    #[must_use]
    pub fn registered_interests(&self) -> usize {
        self.interest_lock().len()
    }

    /// Mirrors the shadow incremental model's activity into `registry`
    /// (under `rvaas_incremental_*_total`).
    pub fn attach_shadow_telemetry(&self, registry: &rvaas_telemetry::Registry) {
        self.shadow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .attach_telemetry(registry);
    }

    fn provenance_lock(&self) -> std::sync::MutexGuard<'_, VecDeque<EpochProvenance>> {
        self.provenance
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn record_provenance(&self, record: EpochProvenance) {
        let mut log = self.provenance_lock();
        log.push_back(record);
        while log.len() > PROVENANCE_CAPACITY {
            log.pop_front();
        }
    }

    /// The provenance record of epoch `serial`, if it has not aged out of
    /// the bounded log.
    #[must_use]
    pub fn provenance(&self, serial: u64) -> Option<EpochProvenance> {
        self.provenance_lock()
            .iter()
            .rev()
            .find(|p| p.serial == serial)
            .cloned()
    }

    /// The most recent provenance records, newest first, at most `limit`.
    #[must_use]
    pub fn recent_provenance(&self, limit: usize) -> Vec<EpochProvenance> {
        self.provenance_lock()
            .iter()
            .rev()
            .take(limit)
            .cloned()
            .collect()
    }

    /// Accumulates re-verification fan-out into epoch `serial`'s provenance
    /// record: a sync session that re-verified `queries` standing queries
    /// while serving this epoch reports the exact count here. No-op when the
    /// record has aged out.
    pub fn record_reverify(&self, serial: u64, queries: u64) {
        let mut log = self.provenance_lock();
        if let Some(record) = log.iter_mut().rev().find(|p| p.serial == serial) {
            record.reverified += queries;
            record.reverify_sessions += 1;
        }
    }

    /// The current epoch. Never blocks the publisher for longer than the
    /// `Arc` clone.
    #[must_use]
    pub fn current(&self) -> Arc<SnapshotEpoch> {
        self.current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Freezes `snapshot` as the next epoch and swaps it in, recording the
    /// delta (digests, rules and affected header region) against the
    /// previous epoch. Returns the new serial and the affected region.
    ///
    /// # Panics
    ///
    /// Panics if the publish is rejected (see [`EpochStore::try_publish`]);
    /// the daemon path uses the fallible form.
    pub fn publish(&self, snapshot: NetworkSnapshot, at: SimTime) -> Published {
        self.try_publish(snapshot, at)
            .expect("epoch publish rejected")
    }

    /// Fallible form of [`EpochStore::publish`].
    ///
    /// The write lock is held across the read–diff–swap so concurrent
    /// publishers serialise: each epoch gets a unique serial and a delta
    /// chained to its true predecessor.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PublishRejected`] if the serial space is
    /// exhausted (the `u64` serial would overflow).
    pub fn try_publish(
        &self,
        snapshot: NetworkSnapshot,
        at: SimTime,
    ) -> Result<Published, ServiceError> {
        // One hash pass over the tables, in per-switch arrival order; the
        // digest index and the (arrival-ordered) added-rule resolution are
        // both derived from it without re-hashing.
        let ordered: Vec<(FlowDigest, SwitchId, &FlowEntry)> = snapshot
            .tables()
            .flat_map(|(switch, entries)| {
                entries
                    .iter()
                    .map(move |e| (digest_entry(switch, e), switch, e))
            })
            .collect();
        let digests: BTreeSet<FlowDigest> = ordered.iter().map(|(d, _, _)| *d).collect();
        let mut current = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let previous = Arc::clone(&current);
        let serial = previous.serial.checked_add(1).ok_or_else(|| {
            ServiceError::PublishRejected(format!(
                "epoch serial space exhausted at {}",
                previous.serial
            ))
        })?;
        let added: Vec<FlowDigest> = digests.difference(&previous.digests).copied().collect();
        let removed: Vec<FlowDigest> = previous.digests.difference(&digests).copied().collect();
        let added_set: BTreeSet<FlowDigest> = added.iter().copied().collect();
        // Resolve adds in arrival order (delta-sized clones) and removals
        // from the previous epoch's index.
        let added_rules: Vec<(SwitchId, FlowEntry)> = ordered
            .iter()
            .filter(|(d, _, _)| added_set.contains(d))
            .map(|(_, switch, e)| (*switch, (*e).clone()))
            .collect();
        let removed_rules: Vec<(SwitchId, FlowEntry)> = removed
            .iter()
            .filter_map(|d| previous.rules.get(d).cloned())
            .collect();
        let rules: BTreeMap<FlowDigest, (SwitchId, FlowEntry)> = ordered
            .into_iter()
            .map(|(d, switch, e)| (d, (switch, e.clone())))
            .collect();
        let change_count = added_rules.len() + removed_rules.len();
        // Past this size the per-rule exposed-region bookkeeping costs
        // more than it saves (the canonical case is the first, full
        // publish): bulk-rebuild the shadow and report an unbounded
        // region, which conservatively re-verifies everything once.
        let bulk_rebuild = change_count > (rules.len() / 4).max(64);
        let changed = {
            let mut shadow = self
                .shadow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if bulk_rebuild {
                shadow.rebuild_from(&snapshot);
                ChangedRegion::everything()
            } else {
                let changes: Vec<RuleChange> = removed_rules
                    .iter()
                    .map(|(s, e)| RuleChange::removed(*s, e.clone()))
                    .chain(
                        added_rules
                            .iter()
                            .map(|(s, e)| RuleChange::installed(*s, e.clone())),
                    )
                    .collect();
                let region = shadow.apply(&changes);
                if shadow.is_desynced() {
                    // This publish already reports a conservative region;
                    // resynchronise so future publishes are bounded again.
                    shadow.rebuild_from(&snapshot);
                }
                region
            }
        };
        // Select (and widen) the affected standing queries before the new
        // epoch becomes visible: a footprint refined against this serial can
        // then never be invalidated by this publish.
        let affected = self.interest_lock().advance(serial, &changed);
        let (added_count, removed_count) = (added.len(), removed.len());
        {
            let mut deltas = self
                .deltas
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            deltas.push_back(EpochDelta {
                from_serial: previous.serial,
                to_serial: serial,
                added,
                removed,
                added_rules,
                removed_rules,
                changed: changed.clone(),
                affected: affected.clone(),
            });
            while deltas.len() > self.max_deltas {
                deltas.pop_front();
            }
        }
        let epoch = Arc::new(SnapshotEpoch {
            serial,
            snapshot,
            digests,
            rules,
            published_at: at,
        });
        let digest = epoch.content_digest();
        *current = epoch;
        let trace = self.trace_publish(
            serial,
            digest,
            added_count,
            removed_count,
            change_count,
            bulk_rebuild,
            at,
            &affected,
        );
        Ok(Published {
            serial,
            changed,
            delta_rules: change_count,
            bulk_rebuild,
            affected,
            trace,
        })
    }

    /// Emits the publish event chain into the flight recorder and appends
    /// the provenance record. Shared by both publish paths.
    #[allow(clippy::too_many_arguments)]
    fn trace_publish(
        &self,
        serial: u64,
        digest: u64,
        added: usize,
        removed: usize,
        delta_rules: usize,
        bulk_rebuild: bool,
        at: SimTime,
        affected: &AffectedQueries,
    ) -> TraceId {
        let trace = TraceContext::mint();
        trace.event(TraceStage::EpochPublish, serial, delta_rules as u64);
        let affected_everything = affected.is_everything();
        let affected_queries = if affected_everything {
            self.registered_interests()
        } else {
            affected.len()
        };
        trace.event(
            TraceStage::EpochDigest,
            digest,
            if affected_everything {
                u64::MAX
            } else {
                affected_queries as u64
            },
        );
        self.record_provenance(EpochProvenance {
            serial,
            digest,
            added,
            removed,
            delta_rules,
            affected_queries,
            affected_everything,
            bulk_rebuild,
            published_at: at,
            trace: trace.id,
            reverified: 0,
            reverify_sessions: 0,
        });
        trace.id
    }

    /// Advances the epoch by a rule-level delta instead of a full snapshot:
    /// the monitor hands [`ConfigMonitor::drain_changes`] output straight
    /// here, and the store derives the next epoch from the previous one —
    /// hashing only the delta entries instead of re-digesting every rule.
    /// (The frozen snapshot itself is still a clone of its predecessor plus
    /// the delta, so memory stays `O(rules)`; the per-publish *hashing* cost
    /// drops from `O(rules)` to `O(delta)`.)
    ///
    /// Installs already present and removals of absent rules are skipped, so
    /// the recorded delta always matches the digest diff of the two epochs.
    ///
    /// # Panics
    ///
    /// Panics if the publish is rejected (see
    /// [`EpochStore::try_publish_changes`]).
    ///
    /// [`ConfigMonitor::drain_changes`]: rvaas::ConfigMonitor::drain_changes
    pub fn publish_changes(&self, changes: &[RuleChange], at: SimTime) -> Published {
        self.try_publish_changes(changes, at)
            .expect("epoch delta publish rejected")
    }

    /// Fallible form of [`EpochStore::publish_changes`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PublishRejected`] if the serial space is
    /// exhausted.
    pub fn try_publish_changes(
        &self,
        changes: &[RuleChange],
        at: SimTime,
    ) -> Result<Published, ServiceError> {
        let mut current = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let previous = Arc::clone(&current);
        let serial = previous.serial.checked_add(1).ok_or_else(|| {
            ServiceError::PublishRejected(format!(
                "epoch serial space exhausted at {}",
                previous.serial
            ))
        })?;
        let mut snapshot = previous.snapshot.clone();
        let mut digests = previous.digests.clone();
        let mut rules = previous.rules.clone();
        let mut added: Vec<FlowDigest> = Vec::new();
        let mut added_rules: Vec<(SwitchId, FlowEntry)> = Vec::new();
        let mut removed: Vec<FlowDigest> = Vec::new();
        let mut removed_rules: Vec<(SwitchId, FlowEntry)> = Vec::new();
        let mut effective: Vec<RuleChange> = Vec::new();
        for change in changes {
            let d = digest_entry(change.switch, &change.entry);
            if change.installed {
                if !digests.insert(d) {
                    continue; // already installed — not a change
                }
                snapshot.record_installed(change.switch, change.entry.clone(), at);
                rules.insert(d, (change.switch, change.entry.clone()));
                // A re-add cancelling an earlier removal in this batch is a
                // digest-level no-op, like cancellation across epochs.
                if let Some(pos) = removed.iter().position(|r| *r == d) {
                    removed.remove(pos);
                    removed_rules.remove(pos);
                } else {
                    added.push(d);
                    added_rules.push((change.switch, change.entry.clone()));
                }
                effective.push(change.clone());
            } else {
                if !digests.remove(&d) {
                    continue; // not installed — nothing to remove
                }
                snapshot.record_removed(change.switch, &change.entry, at);
                rules.remove(&d);
                if let Some(pos) = added.iter().position(|a| *a == d) {
                    added.remove(pos);
                    added_rules.remove(pos);
                } else {
                    removed.push(d);
                    removed_rules.push((change.switch, change.entry.clone()));
                }
                effective.push(change.clone());
            }
        }
        let change_count = effective.len();
        let bulk_rebuild = change_count > (rules.len() / 4).max(64);
        let changed = {
            let mut shadow = self
                .shadow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if bulk_rebuild {
                shadow.rebuild_from(&snapshot);
                ChangedRegion::everything()
            } else {
                // The effective changes include within-batch flaps on
                // purpose: the region must cover them, exactly as
                // `delta_between` keeps flapped regions across epochs.
                let region = shadow.apply(&effective);
                if shadow.is_desynced() {
                    shadow.rebuild_from(&snapshot);
                }
                region
            }
        };
        let affected = self.interest_lock().advance(serial, &changed);
        let delta_rules = added_rules.len() + removed_rules.len();
        let (added_count, removed_count) = (added.len(), removed.len());
        {
            let mut deltas = self
                .deltas
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            deltas.push_back(EpochDelta {
                from_serial: previous.serial,
                to_serial: serial,
                added,
                removed,
                added_rules,
                removed_rules,
                changed: changed.clone(),
                affected: affected.clone(),
            });
            while deltas.len() > self.max_deltas {
                deltas.pop_front();
            }
        }
        let epoch = Arc::new(SnapshotEpoch {
            serial,
            snapshot,
            digests,
            rules,
            published_at: at,
        });
        let digest = epoch.content_digest();
        *current = epoch;
        let trace = self.trace_publish(
            serial,
            digest,
            added_count,
            removed_count,
            delta_rules,
            bulk_rebuild,
            at,
            &affected,
        );
        Ok(Published {
            serial,
            changed,
            delta_rules,
            bulk_rebuild,
            affected,
            trace,
        })
    }

    /// The combined delta from `since_serial` to the current serial, or
    /// `None` when any intermediate delta has been evicted (the caller must
    /// fall back to a full reset). A request for the current serial returns
    /// an empty delta.
    #[must_use]
    pub fn delta_since(&self, since_serial: u64) -> Option<EpochDelta> {
        self.delta_between(since_serial, self.current().serial)
    }

    /// The combined delta covering the window `(from_serial, to_serial]`, or
    /// `None` when the retained history does not cover it (including
    /// `from_serial > to_serial` and serials from the future). An equal pair
    /// returns an empty delta.
    #[must_use]
    pub fn delta_between(&self, from_serial: u64, to_serial: u64) -> Option<EpochDelta> {
        if from_serial > to_serial || to_serial > self.current().serial {
            return None;
        }
        if from_serial == to_serial {
            return Some(EpochDelta::empty(from_serial));
        }
        let deltas = self
            .deltas
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // The retained window must cover every epoch in (from, to].
        let mut added: BTreeSet<FlowDigest> = BTreeSet::new();
        let mut removed: BTreeSet<FlowDigest> = BTreeSet::new();
        // Rule-level adds keep their arrival order; cancellation filters the
        // ordered list rather than re-sorting it.
        let mut added_rules: Vec<(FlowDigest, SwitchId, FlowEntry)> = Vec::new();
        let mut removed_rules: BTreeMap<FlowDigest, (SwitchId, FlowEntry)> = BTreeMap::new();
        let mut changed = ChangedRegion::default();
        let mut affected = AffectedQueries::default();
        let mut next_expected = from_serial;
        for delta in deltas
            .iter()
            .filter(|d| d.from_serial >= from_serial && d.to_serial <= to_serial)
        {
            if delta.from_serial != next_expected {
                return None;
            }
            next_expected = delta.to_serial;
            // The changed region accumulates even across cancelling rule
            // changes: an add-then-remove pair still perturbed the region in
            // between, and over-approximating is the safe direction.
            changed.merge(&delta.changed);
            // A query affected anywhere in the window may hold a moved
            // verdict: the per-epoch selections union, they are never
            // re-derived from the (since-refined) index.
            affected.merge(&delta.affected);
            for (switch, entry) in &delta.added_rules {
                let d = digest_entry(*switch, entry);
                // An add that cancels an earlier remove is a no-op overall.
                if removed.remove(&d) {
                    removed_rules.remove(&d);
                } else {
                    added.insert(d);
                    added_rules.push((d, *switch, entry.clone()));
                }
            }
            for (switch, entry) in &delta.removed_rules {
                let d = digest_entry(*switch, entry);
                if added.remove(&d) {
                    added_rules.retain(|(ad, _, _)| *ad != d);
                } else {
                    removed.insert(d);
                    removed_rules.insert(d, (*switch, entry.clone()));
                }
            }
        }
        if next_expected != to_serial {
            return None;
        }
        Some(EpochDelta {
            from_serial,
            to_serial,
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
            added_rules: added_rules.into_iter().map(|(_, s, e)| (s, e)).collect(),
            removed_rules: removed_rules.into_values().collect(),
            changed,
            affected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_openflow::{Action, FlowMatch};
    use rvaas_types::PortId;

    fn entry(dst: u32) -> FlowEntry {
        FlowEntry::new(10, FlowMatch::to_ip(dst), vec![Action::Output(PortId(1))])
    }

    fn snapshot_with(dsts: &[u32]) -> NetworkSnapshot {
        let mut snap = NetworkSnapshot::new(SimTime::from_secs(1));
        for dst in dsts {
            snap.record_installed(SwitchId(1), entry(*dst), SimTime::from_millis(1));
        }
        snap
    }

    #[test]
    fn digests_ignore_stats_and_cookie_but_not_actions() {
        let a = entry(5);
        let mut b = entry(5);
        b.stats.packets = 99;
        b.cookie = rvaas_types::FlowCookie(7);
        assert_eq!(digest_entry(SwitchId(1), &a), digest_entry(SwitchId(1), &b));
        let c = FlowEntry::new(10, FlowMatch::to_ip(5), vec![Action::Drop]);
        assert_ne!(digest_entry(SwitchId(1), &a), digest_entry(SwitchId(1), &c));
        assert_ne!(digest_entry(SwitchId(2), &a), digest_entry(SwitchId(1), &a));
    }

    #[test]
    fn publish_advances_serial_and_records_delta() {
        let store = EpochStore::new(8);
        assert_eq!(store.current().serial, 0);
        let p1 = store.publish(snapshot_with(&[1, 2]), SimTime::from_millis(1));
        assert_eq!(p1.serial, 1);
        assert!(!p1.changed.is_empty());
        let p2 = store.publish(snapshot_with(&[2, 3]), SimTime::from_millis(2));
        assert_eq!(p2.serial, 2);
        assert_eq!(store.current().serial, 2);

        let delta = store.delta_since(1).expect("retained");
        assert_eq!(delta.to_serial, 2);
        assert_eq!(delta.added.len(), 1, "rule for dst 3 added");
        assert_eq!(delta.removed.len(), 1, "rule for dst 1 removed");
        // Rule-level views mirror the digest-level ones.
        assert_eq!(delta.added_rules.len(), 1);
        assert_eq!(delta.removed_rules.len(), 1);
        assert_eq!(delta.added_rules[0].1.flow_match, FlowMatch::to_ip(3));
        assert_eq!(delta.removed_rules[0].1.flow_match, FlowMatch::to_ip(1));
        let changes = delta.rule_changes();
        assert_eq!(changes.len(), 2);
        assert!(!changes[0].installed, "removals come first");
        assert!(changes[1].installed);
        // The affected region covers both changed destinations.
        assert!(!delta.changed.is_empty());
        assert!(delta.changed.switches.contains(&SwitchId(1)));

        let empty = store.delta_since(2).expect("current serial");
        assert!(empty.is_empty());
        assert!(empty.changed.is_empty());
    }

    #[test]
    fn cancelling_changes_collapse_across_epochs() {
        let store = EpochStore::new(8);
        store.publish(snapshot_with(&[1]), SimTime::from_millis(1));
        store.publish(snapshot_with(&[1, 2]), SimTime::from_millis(2));
        store.publish(snapshot_with(&[1]), SimTime::from_millis(3));
        // dst 2 was added then removed: net delta from serial 1 is empty.
        let delta = store.delta_since(1).expect("retained");
        assert!(delta.added.is_empty());
        assert!(delta.removed.is_empty());
        assert!(delta.added_rules.is_empty());
        assert!(delta.removed_rules.is_empty());
        // ...but the affected region still records that the rule flapped.
        assert!(!delta.changed.is_empty());
    }

    #[test]
    fn delta_between_covers_inner_windows() {
        let store = EpochStore::new(8);
        for i in 1..=4u32 {
            let dsts: Vec<u32> = (1..=i).collect();
            store.publish(snapshot_with(&dsts), SimTime::from_millis(u64::from(i)));
        }
        let delta = store.delta_between(1, 3).expect("retained window");
        assert_eq!(delta.from_serial, 1);
        assert_eq!(delta.to_serial, 3);
        assert_eq!(delta.added.len(), 2, "dst 2 and 3 added");
        assert!(delta.removed.is_empty());
        assert!(store.delta_between(3, 1).is_none(), "backwards window");
        assert!(store.delta_between(1, 99).is_none(), "future serial");
        assert!(store.delta_between(2, 2).expect("empty").is_empty());
    }

    #[test]
    fn evicted_history_forces_reset() {
        let store = EpochStore::new(2);
        for i in 0..5u32 {
            store.publish(snapshot_with(&[i]), SimTime::from_millis(u64::from(i)));
        }
        // Only the last two deltas are retained: serial 1 is unanswerable.
        assert!(store.delta_since(1).is_none());
        assert!(store.delta_since(3).is_some());
        // A serial from the future is also unanswerable.
        assert!(store.delta_since(99).is_none());
    }

    #[test]
    fn epoch_swap_under_concurrent_readers() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let store = Arc::new(EpochStore::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last_serial = 0u64;
                let mut observed = 0u64;
                loop {
                    let epoch = store.current();
                    // Serials must be monotone from any single reader's
                    // point of view, and the frozen snapshot must always be
                    // internally consistent with its digest set.
                    assert!(epoch.serial >= last_serial, "serial went backwards");
                    assert_eq!(digest_snapshot(&epoch.snapshot), epoch.digests);
                    last_serial = epoch.serial;
                    observed += 1;
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                observed
            }));
        }
        for i in 0..200u32 {
            let dsts: Vec<u32> = (0..=i % 7).collect();
            store.publish(snapshot_with(&dsts), SimTime::from_millis(u64::from(i)));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(observed > 0, "reader never observed an epoch");
        }
        assert_eq!(store.current().serial, 200);
    }

    #[test]
    fn publish_changes_matches_full_publish() {
        // Drive one store by full snapshots and a twin by rule deltas; the
        // epochs, digests and deltas must agree.
        let full = EpochStore::new(8);
        let delta = EpochStore::new(8);
        full.publish(snapshot_with(&[1, 2]), SimTime::from_millis(1));
        delta.publish_changes(
            &[
                RuleChange::installed(SwitchId(1), entry(1)),
                RuleChange::installed(SwitchId(1), entry(2)),
            ],
            SimTime::from_millis(1),
        );
        let p_full = full.publish(snapshot_with(&[2, 3]), SimTime::from_millis(2));
        let p_delta = delta.publish_changes(
            &[
                RuleChange::removed(SwitchId(1), entry(1)),
                RuleChange::installed(SwitchId(1), entry(3)),
            ],
            SimTime::from_millis(2),
        );
        assert_eq!(p_delta.serial, p_full.serial);
        assert_eq!(p_delta.delta_rules, p_full.delta_rules);
        assert_eq!(delta.current().digests, full.current().digests);
        assert_eq!(
            digest_snapshot(&delta.current().snapshot),
            delta.current().digests
        );
        let d_full = full.delta_since(1).expect("retained");
        let d_delta = delta.delta_since(1).expect("retained");
        assert_eq!(d_delta.added, d_full.added);
        assert_eq!(d_delta.removed, d_full.removed);
        assert_eq!(d_delta.changed.switches, d_full.changed.switches);
    }

    #[test]
    fn publish_changes_skips_noop_and_collapses_flaps() {
        let store = EpochStore::new(8);
        store.publish_changes(
            &[RuleChange::installed(SwitchId(1), entry(1))],
            SimTime::from_millis(1),
        );
        let p = store.publish_changes(
            &[
                RuleChange::installed(SwitchId(1), entry(1)), // already there
                RuleChange::removed(SwitchId(1), entry(9)),   // never there
                RuleChange::installed(SwitchId(1), entry(2)), // flap up...
                RuleChange::removed(SwitchId(1), entry(2)),   // ...and down
            ],
            SimTime::from_millis(2),
        );
        assert_eq!(p.delta_rules, 0, "digest-level no-op");
        let d = store.delta_since(1).expect("retained");
        assert!(d.added.is_empty() && d.removed.is_empty());
        assert!(
            !d.changed.is_empty(),
            "the flap still perturbed the region: {:?}",
            d.changed
        );
        assert_eq!(store.current().serial, 2);
        assert_eq!(store.current().snapshot.rule_count(), 1);
    }

    #[test]
    fn published_affected_tracks_registered_interests() {
        use rvaas_topology::generators;
        use rvaas_types::ClientId;

        let topology = generators::line(4, 2);
        let store = EpochStore::new(8);
        store.attach_interest_topology(topology.clone());
        store.register_interest(ClientId(1), &QuerySpec::ReachableDestinations);
        store.register_interest(ClientId(2), &QuerySpec::ReachableDestinations);
        assert_eq!(store.registered_interests(), 2);

        // The first publish installs a dst-pinned, src-wild rule: it overlaps
        // both clients' emission interests, so both are selected (exactly —
        // one rule is far below the bulk-rebuild threshold).
        let p1 = store.publish(snapshot_with(&[1]), SimTime::from_millis(1));
        assert!(!p1.affected.is_everything());
        assert_eq!(p1.affected.len(), 2);

        // A tenant-pinned rule change on client 1's source only selects
        // client 1's query.
        let c1_ip = topology.hosts_of_client(ClientId(1))[0].ip;
        let c2_ip = topology.hosts_of_client(ClientId(2))[0].ip;
        let tenant = FlowEntry::new(
            400,
            FlowMatch::from_ip(c1_ip).field(rvaas_types::Field::IpDst, u64::from(c2_ip)),
            vec![Action::Output(PortId(1))],
        );
        let p2 = store.publish_changes(
            &[RuleChange::installed(SwitchId(2), tenant)],
            SimTime::from_millis(2),
        );
        assert!(!p2.affected.is_everything());
        assert!(p2
            .affected
            .is_affected(ClientId(1), &QuerySpec::ReachableDestinations));
        assert!(!p2
            .affected
            .is_affected(ClientId(2), &QuerySpec::ReachableDestinations));
        // The per-epoch selection is frozen into the delta history.
        let window = store.delta_between(1, 2).expect("retained");
        assert!(window
            .affected
            .is_affected(ClientId(1), &QuerySpec::ReachableDestinations));
        // ...and a wider window unions the per-epoch selections, picking the
        // epoch-1 selection of client 2 back up.
        let wide = store.delta_between(0, 2).expect("retained");
        assert!(wide
            .affected
            .is_affected(ClientId(2), &QuerySpec::ReachableDestinations));
    }

    #[test]
    fn provenance_records_publishes_and_accumulates_reverification() {
        let store = EpochStore::new(8);
        store.publish(snapshot_with(&[1, 2]), SimTime::from_millis(1));
        let p2 = store.publish(snapshot_with(&[2, 3]), SimTime::from_millis(2));
        assert!(!p2.trace.is_none(), "publishes mint a trace");

        let prov = store.provenance(2).expect("recent serial retained");
        assert_eq!(prov.serial, 2);
        assert_eq!(prov.added, 1);
        assert_eq!(prov.removed, 1);
        assert_eq!(prov.delta_rules, 2);
        assert_eq!(prov.digest, store.current().content_digest());
        assert_eq!(prov.trace, p2.trace);
        assert_eq!(prov.published_at, SimTime::from_millis(2));
        assert_eq!((prov.reverified, prov.reverify_sessions), (0, 0));

        // Sync sessions report their exact fan-out; unknown serials no-op.
        store.record_reverify(2, 5);
        store.record_reverify(2, 3);
        store.record_reverify(99, 7);
        let prov = store.provenance(2).expect("still retained");
        assert_eq!(prov.reverified, 8);
        assert_eq!(prov.reverify_sessions, 2);
        assert!(store.provenance(99).is_none());

        // Newest-first listing; both publishes are on record.
        let recent = store.recent_provenance(8);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].serial, 2);
        assert_eq!(recent[1].serial, 1);

        // The publish event chain is in the flight recorder under the
        // provenance trace id.
        let chain = rvaas_telemetry::trace::recorder().chain(p2.trace);
        assert!(chain
            .iter()
            .any(|e| e.stage == TraceStage::EpochPublish && e.a == 2));
        assert!(chain.iter().any(|e| e.stage == TraceStage::EpochDigest));
    }

    #[test]
    fn content_digest_depends_on_content_not_publish_path() {
        let a = EpochStore::new(4);
        let b = EpochStore::new(4);
        a.publish(snapshot_with(&[1, 2]), SimTime::from_millis(1));
        b.publish_changes(
            &[
                RuleChange::installed(SwitchId(1), entry(1)),
                RuleChange::installed(SwitchId(1), entry(2)),
            ],
            SimTime::from_millis(9),
        );
        assert_eq!(a.current().content_digest(), b.current().content_digest());
        a.publish(snapshot_with(&[1, 2, 3]), SimTime::from_millis(2));
        assert_ne!(a.current().content_digest(), b.current().content_digest());
    }

    #[test]
    fn publish_is_rejected_when_the_serial_space_is_exhausted() {
        let store = EpochStore::new(4);
        store.publish(snapshot_with(&[1]), SimTime::from_millis(1));
        // Rewind the clock to the end of time: the next publish would need
        // serial u64::MAX + 1.
        {
            let mut current = store.current.write().unwrap();
            *current = Arc::new(SnapshotEpoch {
                serial: u64::MAX,
                snapshot: current.snapshot.clone(),
                digests: current.digests.clone(),
                rules: current.rules.clone(),
                published_at: current.published_at,
            });
        }
        let err = store
            .try_publish(snapshot_with(&[1, 2]), SimTime::from_millis(2))
            .unwrap_err();
        assert!(matches!(err, ServiceError::PublishRejected(_)));
        assert!(err.to_string().contains("serial space exhausted"));
        // The store is not corrupted: the current epoch is unchanged.
        assert_eq!(store.current().serial, u64::MAX);
    }
}
