//! Declarative service-plane configuration.
//!
//! The original `ServiceConfig` grew one `with_*` builder method per knob;
//! every new knob meant another method and another undiscoverable default.
//! The `rvaas` daemon made that untenable: a config *file* needs a flat,
//! declarative surface where every knob has a name, a parseable value and a
//! single source of truth for its default.
//!
//! The redesign splits the config in two:
//!
//! * [`ServiceSettings`] — the plain-data knobs (worker count, cache,
//!   incremental engine, delta history, listener addresses). Serde-derivable,
//!   [`Default`]-constructible, and settable by string key/value pairs
//!   ([`ServiceSettings::set`]) so the daemon's config-file parser and its
//!   CLI flag overrides share one validation path.
//! * [`ServiceConfig`] — settings plus the [`VerifierConfig`], which cannot
//!   come from a file (it embeds the topology-derived location map).
//!
//! The old builder methods survive on [`ServiceConfig`] as thin
//! deprecated-style wrappers so existing call sites keep compiling; new code
//! should construct [`ServiceSettings`] directly.

use serde::{Deserialize, Serialize};

use rvaas::VerifierConfig;

use crate::error::ServiceError;

/// The declarative, file-constructible knobs of the verification service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSettings {
    /// Number of worker threads (minimum 1).
    pub workers: usize,
    /// Whether the `(serial, client, spec)` result cache is consulted.
    pub cache: bool,
    /// Whether workers maintain their HSA model incrementally from epoch
    /// deltas (and the cache invalidates per affected query) instead of
    /// rebuilding from scratch on every epoch advance. History-mode
    /// verification always uses the full-rebuild path regardless.
    pub incremental: bool,
    /// How many per-epoch deltas the store retains for delta sync.
    pub max_delta_history: usize,
    /// `host:port` the daemon's RTR-style TCP sync endpoint binds, if any.
    pub sync_listen: Option<String>,
    /// `host:port` the daemon's HTTP endpoint (`/v1/query`, `/v1/epoch`,
    /// `/metrics`) binds, if any.
    pub http_listen: Option<String>,
    /// Total flight-recorder ring slots (see `rvaas_telemetry::trace`).
    /// Applied to the process-global recorder at service construction, so
    /// it only takes effect if set before the first recorded event.
    pub trace_ring_capacity: usize,
    /// End-to-end query latency (µs) beyond which a trace is promoted out
    /// of the ring into the retained slow-query set. Adjustable live.
    pub slow_query_threshold_us: u64,
}

impl Default for ServiceSettings {
    /// Sensible defaults: 4 workers, caching on, incremental updates on,
    /// 64 retained deltas, no listeners (in-process use), a 4096-slot
    /// flight-recorder ring and a 10 ms slow-query threshold.
    fn default() -> Self {
        ServiceSettings {
            workers: 4,
            cache: true,
            incremental: true,
            max_delta_history: 64,
            sync_listen: None,
            http_listen: None,
            trace_ring_capacity: rvaas_telemetry::trace::DEFAULT_RING_CAPACITY,
            slow_query_threshold_us: rvaas_telemetry::trace::DEFAULT_SLOW_THRESHOLD_US,
        }
    }
}

/// Every key [`ServiceSettings::set`] understands, in documentation order.
pub const SETTING_KEYS: [&str; 8] = [
    "workers",
    "cache",
    "incremental",
    "max_delta_history",
    "sync_listen",
    "http_listen",
    "trace_ring_capacity",
    "slow_query_threshold_us",
];

fn parse_bool(key: &str, value: &str) -> Result<bool, ServiceError> {
    match value {
        "true" | "on" | "yes" | "1" => Ok(true),
        "false" | "off" | "no" | "0" => Ok(false),
        _ => Err(ServiceError::Config(format!(
            "{key} expects a boolean, got {value:?}"
        ))),
    }
}

fn parse_count(key: &str, value: &str) -> Result<usize, ServiceError> {
    value.parse::<usize>().map_err(|_| {
        ServiceError::Config(format!(
            "{key} expects a non-negative integer, got {value:?}"
        ))
    })
}

impl ServiceSettings {
    /// Applies one `key = value` pair from a config file or CLI flag. This is
    /// the single validation path for both: the daemon parses syntax, this
    /// method owns semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Config`] for unknown keys or unparseable
    /// values.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ServiceError> {
        match key {
            "workers" => self.workers = parse_count(key, value)?.max(1),
            "cache" => self.cache = parse_bool(key, value)?,
            "incremental" => self.incremental = parse_bool(key, value)?,
            "max_delta_history" => self.max_delta_history = parse_count(key, value)?.max(1),
            "sync_listen" => self.sync_listen = Some(value.to_string()),
            "http_listen" => self.http_listen = Some(value.to_string()),
            "trace_ring_capacity" => self.trace_ring_capacity = parse_count(key, value)?.max(1),
            "slow_query_threshold_us" => {
                self.slow_query_threshold_us = parse_count(key, value)? as u64;
            }
            _ => {
                return Err(ServiceError::Config(format!(
                    "unknown setting {key:?} (known: {})",
                    SETTING_KEYS.join(", ")
                )))
            }
        }
        Ok(())
    }

    /// Combines these settings with the verifier configuration the service
    /// actually needs to run.
    #[must_use]
    pub fn into_config(self, verifier: VerifierConfig) -> ServiceConfig {
        ServiceConfig {
            settings: self,
            verifier,
        }
    }
}

/// Configuration of the verification service: declarative settings plus the
/// verifier configuration (which embeds the topology-derived location map
/// and therefore cannot come from a config file).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The declarative knobs.
    pub settings: ServiceSettings,
    /// Verifier configuration shared by every worker.
    pub verifier: VerifierConfig,
}

impl ServiceConfig {
    /// Default settings around `verifier` (see [`ServiceSettings::default`]).
    #[must_use]
    pub fn new(verifier: VerifierConfig) -> Self {
        ServiceSettings::default().into_config(verifier)
    }

    /// Deprecated-style wrapper: prefer setting
    /// [`ServiceSettings::workers`] and [`ServiceSettings::into_config`].
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.settings.workers = workers.max(1);
        self
    }

    /// Deprecated-style wrapper: prefer setting [`ServiceSettings::cache`]
    /// and [`ServiceSettings::into_config`].
    #[must_use]
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.settings.cache = enabled;
        self
    }

    /// Deprecated-style wrapper: prefer setting
    /// [`ServiceSettings::incremental`] and [`ServiceSettings::into_config`].
    /// Disabling reproduces the full-rebuild architecture, which the
    /// benchmarks use as their baseline.
    #[must_use]
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.settings.incremental = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas::LocationMap;

    #[test]
    fn defaults_match_the_documented_values() {
        let s = ServiceSettings::default();
        assert_eq!(s.workers, 4);
        assert!(s.cache);
        assert!(s.incremental);
        assert_eq!(s.max_delta_history, 64);
        assert!(s.sync_listen.is_none());
        assert!(s.http_listen.is_none());
        assert_eq!(
            s.trace_ring_capacity,
            rvaas_telemetry::trace::DEFAULT_RING_CAPACITY
        );
        assert_eq!(
            s.slow_query_threshold_us,
            rvaas_telemetry::trace::DEFAULT_SLOW_THRESHOLD_US
        );
    }

    #[test]
    fn every_documented_key_is_settable() {
        let mut s = ServiceSettings::default();
        for (key, value) in [
            ("workers", "8"),
            ("cache", "off"),
            ("incremental", "false"),
            ("max_delta_history", "16"),
            ("sync_listen", "127.0.0.1:3323"),
            ("http_listen", "127.0.0.1:8323"),
            ("trace_ring_capacity", "1024"),
            ("slow_query_threshold_us", "2500"),
        ] {
            assert!(SETTING_KEYS.contains(&key));
            s.set(key, value).unwrap();
        }
        assert_eq!(s.workers, 8);
        assert!(!s.cache);
        assert!(!s.incremental);
        assert_eq!(s.max_delta_history, 16);
        assert_eq!(s.sync_listen.as_deref(), Some("127.0.0.1:3323"));
        assert_eq!(s.http_listen.as_deref(), Some("127.0.0.1:8323"));
        assert_eq!(s.trace_ring_capacity, 1024);
        assert_eq!(s.slow_query_threshold_us, 2500);
    }

    #[test]
    fn minimums_are_clamped_and_bad_values_are_typed_errors() {
        let mut s = ServiceSettings::default();
        s.set("workers", "0").unwrap();
        assert_eq!(s.workers, 1, "worker count clamps to 1");
        s.set("max_delta_history", "0").unwrap();
        assert_eq!(s.max_delta_history, 1);
        assert!(matches!(
            s.set("workers", "many"),
            Err(ServiceError::Config(_))
        ));
        assert!(matches!(
            s.set("cache", "perhaps"),
            Err(ServiceError::Config(_))
        ));
        let err = s.set("worker_threads", "4").unwrap_err();
        assert!(
            err.to_string().contains("workers"),
            "unknown-key error must list the known keys: {err}"
        );
    }

    #[test]
    fn builder_wrappers_forward_into_settings() {
        let topology = rvaas_topology::generators::line(3, 1);
        let config = ServiceConfig::new(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(&topology),
        })
        .with_workers(2)
        .with_cache(false)
        .with_incremental(false);
        assert_eq!(config.settings.workers, 2);
        assert!(!config.settings.cache);
        assert!(!config.settings.incremental);
    }
}
