//! The `(epoch serial, client, query)` result cache with per-affected-query
//! invalidation.
//!
//! The first service-plane revision dropped whole cache generations on every
//! epoch advance, which collapsed the hit rate under any churn even when a
//! delta could not possibly have changed most answers. The cache now keys
//! entries by `(client, query)` with a per-entry validity serial: on epoch
//! advance ([`ResultCache::advance`]) the publisher passes the
//! affected-query predicate derived from the delta's changed header region,
//! unaffected entries are *carried forward* to the new serial (their answer
//! is provably unchanged — see `rvaas::incremental`), and only the affected
//! ones are invalidated.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rvaas_client::{QueryResult, QuerySpec};
use rvaas_telemetry::{Counter, Registry};
use rvaas_types::ClientId;

/// A point-in-time copy of the cache counters — a thin snapshot view over
/// the shared metric registry (`rvaas_cache_*_total`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses so far.
    pub misses: u64,
    /// Entries carried forward across epoch advances (still valid because
    /// the delta could not affect them).
    pub carried: u64,
    /// Entries invalidated by epoch advances.
    pub invalidated: u64,
}

impl CacheStats {
    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries carried forward across epoch advances.
    #[must_use]
    pub fn carried(&self) -> u64 {
        self.carried
    }

    /// Entries invalidated by epoch advances.
    #[must_use]
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }

    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits as f64;
        let total = hits + self.misses as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// Entries keyed by `(client, query)`, each valid for exactly one serial.
#[derive(Debug, Default)]
struct CacheState {
    /// The latest serial the cache has been advanced to.
    serial: u64,
    entries: HashMap<(ClientId, QuerySpec), (u64, QueryResult)>,
}

/// The shared query-result cache.
#[derive(Debug)]
pub struct ResultCache {
    state: Mutex<CacheState>,
    enabled: bool,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    carried: Arc<Counter>,
    invalidated: Arc<Counter>,
}

impl ResultCache {
    /// An empty cache counting into its own private registry; `enabled =
    /// false` turns every lookup into a miss (used by benchmarks isolating
    /// raw verification throughput).
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        ResultCache::with_registry(enabled, &Registry::new())
    }

    /// An empty cache whose counters live in the shared `registry` (under
    /// `rvaas_cache_hits_total` / `_misses_` / `_carried_` / `_invalidated_`).
    #[must_use]
    pub fn with_registry(enabled: bool, registry: &Registry) -> Self {
        ResultCache {
            state: Mutex::new(CacheState::default()),
            enabled,
            hits: registry.counter("rvaas_cache_hits_total", "Result-cache hits."),
            misses: registry.counter("rvaas_cache_misses_total", "Result-cache misses."),
            carried: registry.counter(
                "rvaas_cache_carried_total",
                "Cache entries carried across epoch advances (provably unaffected by the delta).",
            ),
            invalidated: registry.counter(
                "rvaas_cache_invalidated_total",
                "Cache entries invalidated by epoch advances.",
            ),
        }
    }

    /// Looks up a result valid at `serial` for `(client, spec)`.
    #[must_use]
    pub fn get(&self, serial: u64, client: ClientId, spec: &QuerySpec) -> Option<QueryResult> {
        if !self.enabled {
            self.misses.inc();
            return None;
        }
        let guard = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let result = guard
            .entries
            .get(&(client, spec.clone()))
            .filter(|(valid_at, _)| *valid_at == serial)
            .map(|(_, result)| result.clone());
        drop(guard);
        if result.is_some() {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
        result
    }

    /// Stores a result computed at `serial`. Results older than the cache's
    /// current generation (computed by a worker that raced a publish) are
    /// discarded rather than clobbering a fresher entry.
    pub fn put(&self, serial: u64, client: ClientId, spec: QuerySpec, result: QueryResult) {
        if !self.enabled {
            return;
        }
        let mut guard = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if serial < guard.serial {
            return;
        }
        let entry = guard
            .entries
            .entry((client, spec))
            .or_insert((0, result.clone()));
        if serial >= entry.0 {
            *entry = (serial, result);
        }
    }

    /// Advances the cache to `to_serial`. Entries valid at the *direct
    /// predecessor* epoch (`to_serial - 1`) for which `affected` returns
    /// `false` stay valid and are re-stamped to the new serial; everything
    /// else is dropped. Passing `|_, _| true` reproduces the old
    /// generation-wide invalidation (used when the incremental engine is
    /// disabled or the changed region is unbounded).
    ///
    /// Requiring the direct predecessor (rather than whatever the cache was
    /// last advanced to) keeps concurrent publishers sound: `affected` is
    /// derived from one epoch's delta, so an entry may only ride across
    /// exactly that epoch boundary. If a racing publisher advanced the cache
    /// out of order, entries from skipped epochs are dropped instead of
    /// being carried past a delta that was never checked against them.
    pub fn advance(&self, to_serial: u64, affected: impl Fn(ClientId, &QuerySpec) -> bool) {
        if !self.enabled {
            return;
        }
        let mut guard = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if to_serial <= guard.serial {
            return;
        }
        guard.serial = to_serial;
        let mut carried = 0u64;
        let mut invalidated = 0u64;
        guard.entries.retain(|(client, spec), entry| {
            if entry.0 >= to_serial {
                // A worker already answered against the new epoch.
                return true;
            }
            if entry.0 + 1 == to_serial && !affected(*client, spec) {
                entry.0 = to_serial;
                carried += 1;
                true
            } else {
                invalidated += 1;
                false
            }
        });
        drop(guard);
        self.carried.add(carried);
        self.invalidated.add(invalidated);
    }

    /// A point-in-time copy of the hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            carried: self.carried.get(),
            invalidated: self.invalidated.get(),
        }
    }

    /// Number of live entries (test/diagnostic aid).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entries
            .len()
    }

    /// True when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(n: u32) -> QueryResult {
        QueryResult::PathLength {
            min_hops: n,
            max_hops: n,
            reachable: true,
        }
    }

    #[test]
    fn hit_after_put_at_same_serial() {
        let cache = ResultCache::new(true);
        assert!(cache.get(1, ClientId(1), &QuerySpec::Isolation).is_none());
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        assert_eq!(
            cache.get(1, ClientId(1), &QuerySpec::Isolation),
            Some(result(3))
        );
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn advance_invalidates_affected_and_carries_the_rest() {
        let cache = ResultCache::new(true);
        cache.advance(1, |_, _| true);
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        cache.put(1, ClientId(2), QuerySpec::GeoLocation, result(4));
        // Only client 1 is affected by the (synthetic) delta.
        cache.advance(2, |client, _| client == ClientId(1));
        assert!(
            cache.get(2, ClientId(1), &QuerySpec::Isolation).is_none(),
            "affected entry must be recomputed"
        );
        assert_eq!(
            cache.get(2, ClientId(2), &QuerySpec::GeoLocation),
            Some(result(4)),
            "unaffected entry rides along to the new serial"
        );
        assert!(
            cache.get(1, ClientId(2), &QuerySpec::GeoLocation).is_none(),
            "the carried entry answers for the new serial, not the old one"
        );
        assert_eq!(cache.stats().carried(), 1);
        assert_eq!(cache.stats().invalidated(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_wide_invalidation_with_always_affected() {
        let cache = ResultCache::new(true);
        cache.advance(1, |_, _| true);
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        cache.advance(2, |_, _| true);
        assert!(cache.get(2, ClientId(1), &QuerySpec::Isolation).is_none());
        assert!(cache.is_empty());
        // A straggler result from the evicted epoch is discarded.
        cache.put(1, ClientId(3), QuerySpec::Neutrality, result(5));
        assert!(cache.get(1, ClientId(3), &QuerySpec::Neutrality).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn racing_put_at_new_serial_survives_advance() {
        let cache = ResultCache::new(true);
        cache.advance(1, |_, _| true);
        // A worker that grabbed epoch 2 before the publisher advanced the
        // cache writes first...
        cache.put(2, ClientId(1), QuerySpec::Isolation, result(9));
        cache.advance(2, |_, _| true);
        // ...and its (current-epoch) result must not be dropped.
        assert_eq!(
            cache.get(2, ClientId(1), &QuerySpec::Isolation),
            Some(result(9))
        );
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ResultCache::new(false);
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        assert!(cache.get(1, ClientId(1), &QuerySpec::Isolation).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits(), 0);
    }
}
