//! The `(epoch serial, client, query)` result cache.
//!
//! Results are only valid for the exact epoch they were computed against, so
//! the cache keys on the serial and drops stale generations wholesale when
//! the epoch advances — there is no per-entry invalidation to get wrong.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rvaas_client::{QueryResult, QuerySpec};
use rvaas_types::ClientId;

/// Cache hit/miss counters (monotonic, lock-free).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheStats {
    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]`; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

/// One cache generation: the epoch serial it is valid for and its entries.
type Generation = (u64, HashMap<(ClientId, QuerySpec), QueryResult>);

/// The shared query-result cache.
#[derive(Debug)]
pub struct ResultCache {
    entries: Mutex<Generation>,
    stats: CacheStats,
    enabled: bool,
}

impl ResultCache {
    /// An empty cache; `enabled = false` turns every lookup into a miss
    /// (used by benchmarks isolating raw verification throughput).
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        ResultCache {
            entries: Mutex::new((0, HashMap::new())),
            stats: CacheStats::default(),
            enabled,
        }
    }

    /// Looks up a result computed at `serial` for `(client, spec)`.
    #[must_use]
    pub fn get(&self, serial: u64, client: ClientId, spec: &QuerySpec) -> Option<QueryResult> {
        if !self.enabled {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let guard = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let result = if guard.0 == serial {
            guard.1.get(&(client, spec.clone())).cloned()
        } else {
            None
        };
        drop(guard);
        if result.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Stores a result computed at `serial`. A result from a newer epoch
    /// than the cache generation drops the stale generation first; results
    /// from older epochs (computed by a worker that raced a publish) are
    /// discarded rather than poisoning the newer generation.
    pub fn put(&self, serial: u64, client: ClientId, spec: QuerySpec, result: QueryResult) {
        if !self.enabled {
            return;
        }
        let mut guard = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match serial.cmp(&guard.0) {
            std::cmp::Ordering::Greater => {
                guard.0 = serial;
                guard.1.clear();
                guard.1.insert((client, spec), result);
            }
            std::cmp::Ordering::Equal => {
                guard.1.insert((client, spec), result);
            }
            std::cmp::Ordering::Less => {}
        }
    }

    /// Hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of live entries (test/diagnostic aid).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .1
            .len()
    }

    /// True when the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(n: u32) -> QueryResult {
        QueryResult::PathLength {
            min_hops: n,
            max_hops: n,
            reachable: true,
        }
    }

    #[test]
    fn hit_after_put_at_same_serial() {
        let cache = ResultCache::new(true);
        assert!(cache.get(1, ClientId(1), &QuerySpec::Isolation).is_none());
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        assert_eq!(
            cache.get(1, ClientId(1), &QuerySpec::Isolation),
            Some(result(3))
        );
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn epoch_advance_invalidates_previous_generation() {
        let cache = ResultCache::new(true);
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        cache.put(2, ClientId(2), QuerySpec::GeoLocation, result(4));
        // The old generation is gone wholesale.
        assert!(cache.get(1, ClientId(1), &QuerySpec::Isolation).is_none());
        assert!(cache.get(2, ClientId(1), &QuerySpec::Isolation).is_none());
        assert_eq!(cache.len(), 1);
        // A straggler result from the evicted epoch is discarded.
        cache.put(1, ClientId(3), QuerySpec::Neutrality, result(5));
        assert!(cache.get(1, ClientId(3), &QuerySpec::Neutrality).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let cache = ResultCache::new(false);
        cache.put(1, ClientId(1), QuerySpec::Isolation, result(3));
        assert!(cache.get(1, ClientId(1), &QuerySpec::Isolation).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits(), 0);
    }
}
