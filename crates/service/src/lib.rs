//! # rvaas-service — the standalone verification service plane
//!
//! The seed answered every client query inline from the simulated
//! controller's event handler, one at a time, rebuilding the HSA model from
//! scratch per query. This crate turns verification into a *service*:
//!
//! * [`epoch`] — the monitor's [`rvaas::NetworkSnapshot`] is frozen into
//!   immutable, serially numbered [`epoch::SnapshotEpoch`]s and swapped
//!   atomically; readers never block the publisher, and monitor churn keeps
//!   publishing while queries run against the previous epoch. Every delta is
//!   retained at digest, rule and *changed-header-region* granularity.
//! * [`pool`] — a [`pool::VerificationService`] shards queries across OS
//!   worker threads by client and batches co-queued queries through one
//!   [`rvaas::QueryEvaluator`]. Each worker owns a long-lived
//!   [`rvaas::IncrementalModel`] advanced by epoch deltas in place
//!   (`O(delta)` per epoch instead of an `O(network)` rebuild), and the
//!   `(client, query)` result cache carries entries a delta provably cannot
//!   affect across epoch advances.
//! * [`sync`] — an RTR-style session/serial delta protocol: clients mirror
//!   the published digest set and receive only what changed since their
//!   serial, plus re-verified standing queries — only those whose interest
//!   space intersects the delta's affected header region — falling back to
//!   a full reset when the delta history has been evicted.
//! * [`backend`] — [`backend::ServiceBackend`] plugs the service plane into
//!   the existing `RvaasController` via [`rvaas::AnalysisBackend`].
//! * [`config`] — the declarative [`config::ServiceSettings`] surface the
//!   `rvaas` daemon builds from a config file and CLI overrides, replacing
//!   the old per-knob builder sprawl.
//! * [`error`] — the unified [`error::ServiceError`] every fallible
//!   service-plane operation reports, replacing the old mix of panics,
//!   `String`s and raw codec errors.
//!
//! ```
//! use rvaas::{LocationMap, NetworkSnapshot, VerifierConfig};
//! use rvaas_client::QuerySpec;
//! use rvaas_service::{ServiceConfig, VerificationService};
//! use rvaas_topology::generators;
//! use rvaas_types::{ClientId, SimTime};
//!
//! let topology = generators::line(4, 2);
//! let config = ServiceConfig::new(VerifierConfig {
//!     use_history: false,
//!     locations: LocationMap::disclosed(&topology),
//! });
//! let service = VerificationService::new(topology, config);
//! service.publish(&NetworkSnapshot::default(), SimTime::ZERO);
//! let response = service.query(ClientId(1), QuerySpec::Isolation);
//! assert_eq!(response.epoch_serial, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod config;
pub mod epoch;
pub mod error;
pub mod pool;
pub mod sync;

pub use backend::ServiceBackend;
pub use cache::{CacheStats, ResultCache};
pub use config::{ServiceConfig, ServiceSettings, SETTING_KEYS};
pub use epoch::{
    digest_entry, digest_snapshot, EpochDelta, EpochProvenance, EpochStore, Published,
    SnapshotEpoch,
};
pub use error::ServiceError;
pub use pool::{QueryResponse, QueryTicket, ServiceStats, VerificationService};
pub use sync::{ReverifyStats, SyncServer};
