//! # rvaas-service — the standalone verification service plane
//!
//! The seed answered every client query inline from the simulated
//! controller's event handler, one at a time, rebuilding the HSA model from
//! scratch per query. This crate turns verification into a *service*:
//!
//! * [`epoch`] — the monitor's [`rvaas::NetworkSnapshot`] is frozen into
//!   immutable, serially numbered [`epoch::SnapshotEpoch`]s and swapped
//!   atomically; readers never block the publisher, and monitor churn keeps
//!   publishing while queries run against the previous epoch.
//! * [`pool`] — a [`pool::VerificationService`] shards queries across OS
//!   worker threads by client, batches co-queued queries through one
//!   [`rvaas::QueryEvaluator`] (one HSA build + shared per-host traversals
//!   per batch), and caches results per `(epoch serial, client, query)`.
//! * [`sync`] — an RTR-style session/serial delta protocol: clients mirror
//!   the published digest set and receive only what changed since their
//!   serial (plus re-verified standing queries), falling back to a full
//!   reset when the delta history has been evicted.
//! * [`backend`] — [`backend::ServiceBackend`] plugs the service plane into
//!   the existing `RvaasController` via [`rvaas::AnalysisBackend`].
//!
//! ```
//! use rvaas::{LocationMap, NetworkSnapshot, VerifierConfig};
//! use rvaas_client::QuerySpec;
//! use rvaas_service::{ServiceConfig, VerificationService};
//! use rvaas_topology::generators;
//! use rvaas_types::{ClientId, SimTime};
//!
//! let topology = generators::line(4, 2);
//! let config = ServiceConfig::new(VerifierConfig {
//!     use_history: false,
//!     locations: LocationMap::disclosed(&topology),
//! });
//! let service = VerificationService::new(topology, config);
//! service.publish(&NetworkSnapshot::default(), SimTime::ZERO);
//! let response = service.query(ClientId(1), QuerySpec::Isolation);
//! assert_eq!(response.epoch_serial, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod epoch;
pub mod pool;
pub mod sync;

pub use backend::ServiceBackend;
pub use cache::{CacheStats, ResultCache};
pub use epoch::{digest_entry, digest_snapshot, EpochDelta, EpochStore, SnapshotEpoch};
pub use pool::{QueryResponse, QueryTicket, ServiceConfig, ServiceStats, VerificationService};
pub use sync::SyncServer;
