//! The unified service-plane error type.
//!
//! Before this module existed the service plane reported failures three
//! different ways: `expect`/panic on pool channel breakage, `String`s from
//! ad-hoc validation, and raw [`rvaas_types::Error`] codec failures bubbling
//! out of `rvaas-client`. A served network API needs one typed error it can
//! map onto wire responses, so everything converges on [`ServiceError`]:
//! the pool's `try_*` methods, epoch publishing, sync-session handling and
//! the daemon's HTTP status mapping all speak it.

use std::fmt;

/// Any failure the verification service plane can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The worker pool cannot accept or answer queries (shutting down, or a
    /// worker thread died).
    PoolUnavailable {
        /// Which operation found the pool gone.
        context: &'static str,
    },
    /// The pool accepted the query but dropped it before answering
    /// (shutdown raced the in-flight batch).
    QueryDropped,
    /// An epoch could not be published.
    PublishRejected(String),
    /// A wire message could not be decoded.
    Codec(rvaas_types::Error),
    /// A peer spoke a sync-protocol major version this server does not
    /// implement; the carried versions feed the negotiation reply.
    VersionMismatch {
        /// The highest version this server speaks.
        supported: u8,
        /// The version the peer sent.
        got: u8,
    },
    /// A query was malformed or referenced unknown entities.
    InvalidQuery(String),
    /// A configuration key or value was not understood.
    Config(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::PoolUnavailable { context } => {
                write!(f, "verification pool unavailable during {context}")
            }
            ServiceError::QueryDropped => {
                write!(f, "query dropped before completion (service shutting down)")
            }
            ServiceError::PublishRejected(why) => write!(f, "epoch publish rejected: {why}"),
            ServiceError::Codec(inner) => write!(f, "wire decode failed: {inner}"),
            ServiceError::VersionMismatch { supported, got } => write!(
                f,
                "sync protocol version {}.{} not supported (server speaks {}.{})",
                got >> 4,
                got & 0x0f,
                supported >> 4,
                supported & 0x0f
            ),
            ServiceError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            ServiceError::Config(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Codec(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<rvaas_types::Error> for ServiceError {
    /// Codec failures from `rvaas-client` convert directly; the typed
    /// version error keeps its structure so the server can answer with a
    /// negotiation reply instead of a generic decode failure.
    fn from(err: rvaas_types::Error) -> Self {
        match err {
            rvaas_types::Error::UnsupportedVersion { supported, got } => {
                ServiceError::VersionMismatch { supported, got }
            }
            rvaas_types::Error::InvalidQuery(why) => ServiceError::InvalidQuery(why),
            other => ServiceError::Codec(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_std_error_with_source() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ServiceError>();
        let err = ServiceError::Codec(rvaas_types::Error::codec("bad tag"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ServiceError::QueryDropped).is_none());
    }

    #[test]
    fn codec_errors_convert_preserving_version_structure() {
        let version = rvaas_types::Error::UnsupportedVersion {
            supported: 0x10,
            got: 0x20,
        };
        assert_eq!(
            ServiceError::from(version),
            ServiceError::VersionMismatch {
                supported: 0x10,
                got: 0x20,
            }
        );
        assert!(matches!(
            ServiceError::from(rvaas_types::Error::codec("underrun")),
            ServiceError::Codec(rvaas_types::Error::Codec(_))
        ));
    }

    #[test]
    fn display_is_human_readable() {
        let err = ServiceError::VersionMismatch {
            supported: 0x10,
            got: 0x21,
        };
        assert_eq!(
            err.to_string(),
            "sync protocol version 2.1 not supported (server speaks 1.0)"
        );
    }
}
