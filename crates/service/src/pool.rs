//! The query scheduler and sharded worker pool.
//!
//! Incoming queries are sharded across `N` OS-thread workers by client, so
//! one client's standing queries always land on the same worker (maximising
//! evaluator and cache locality). Each worker drains its queue into a batch
//! and answers the whole batch through **one** [`rvaas::QueryEvaluator`]:
//! the HSA network function is built once per batch and per-host traversals
//! are shared between every query in it, so a batch of queries from the same
//! source host costs one traversal instead of one per query.
//!
//! Workers always answer against the epoch that was current when their
//! batch started; the monitor can keep publishing new epochs concurrently
//! without blocking them (see [`crate::epoch::EpochStore`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rvaas::{LogicalVerifier, NetworkSnapshot, VerifierConfig};
use rvaas_client::{QueryResult, QuerySpec};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, SimTime};

use crate::cache::ResultCache;
use crate::epoch::EpochStore;

/// Upper bound on how many queued queries one worker folds into a batch.
const MAX_BATCH: usize = 64;

/// Configuration of the verification service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads (minimum 1).
    pub workers: usize,
    /// Whether the `(serial, client, spec)` result cache is consulted.
    pub cache_enabled: bool,
    /// How many per-epoch deltas the store retains for delta sync.
    pub max_delta_history: usize,
    /// Verifier configuration shared by every worker.
    pub verifier: VerifierConfig,
}

impl ServiceConfig {
    /// Sensible defaults: 4 workers, caching on, 64 retained deltas.
    #[must_use]
    pub fn new(verifier: VerifierConfig) -> Self {
        ServiceConfig {
            workers: 4,
            cache_enabled: true,
            max_delta_history: 64,
            verifier,
        }
    }

    /// Overrides the worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables the result cache (builder style).
    #[must_use]
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }
}

/// A completed query, as delivered back to the submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The querying client.
    pub client: ClientId,
    /// The query.
    pub spec: QuerySpec,
    /// The verification result.
    pub result: QueryResult,
    /// The epoch serial the result was computed against.
    pub epoch_serial: u64,
    /// Wall-clock time from submission to completion.
    pub latency: Duration,
}

struct QueryJob {
    client: ClientId,
    spec: QuerySpec,
    submitted: Instant,
    reply: mpsc::Sender<QueryResponse>,
}

enum WorkerMsg {
    Query(QueryJob),
    Shutdown,
}

/// A pending query's completion handle.
#[derive(Debug)]
pub struct QueryTicket {
    rx: mpsc::Receiver<QueryResponse>,
}

impl QueryTicket {
    /// Blocks until the worker delivers the response.
    ///
    /// # Panics
    ///
    /// Panics if the service was shut down before answering.
    #[must_use]
    pub fn wait(self) -> QueryResponse {
        self.rx
            .recv()
            .expect("verification service dropped the query")
    }
}

/// Monotonic activity counters, readable while the service runs.
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    epochs_published: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Queries answered (cached or computed).
    pub queries: u64,
    /// Batches executed by workers.
    pub batches: u64,
    /// Queries answered as part of a batch of two or more.
    pub batched_queries: u64,
    /// Epochs published through the service.
    pub epochs_published: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Number of worker threads.
    pub workers: usize,
}

/// The standalone verification service: epoch store + worker pool + cache.
pub struct VerificationService {
    store: Arc<EpochStore>,
    cache: Arc<ResultCache>,
    counters: Arc<Counters>,
    senders: Vec<mpsc::Sender<WorkerMsg>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerificationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerificationService")
            .field("workers", &self.workers.len())
            .field("current_serial", &self.store.current().serial)
            .finish()
    }
}

impl VerificationService {
    /// Starts the service over the trusted `topology`.
    #[must_use]
    pub fn new(topology: Topology, config: ServiceConfig) -> Self {
        let store = Arc::new(EpochStore::new(config.max_delta_history.max(1)));
        let cache = Arc::new(ResultCache::new(config.cache_enabled));
        let counters = Arc::new(Counters::default());
        let worker_count = config.workers.max(1);
        let mut senders = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            let verifier = LogicalVerifier::new(topology.clone(), config.verifier.clone());
            let store = Arc::clone(&store);
            let cache = Arc::clone(&cache);
            let counters = Arc::clone(&counters);
            let handle = std::thread::Builder::new()
                .name(format!("rvaas-verify-{index}"))
                .spawn(move || worker_loop(&rx, &verifier, &store, &cache, &counters))
                .expect("spawning verification worker");
            senders.push(tx);
            workers.push(handle);
        }
        VerificationService {
            store,
            cache,
            counters,
            senders,
            workers,
        }
    }

    /// The epoch store (shared with the sync server).
    #[must_use]
    pub fn store(&self) -> Arc<EpochStore> {
        Arc::clone(&self.store)
    }

    /// The current epoch serial.
    #[must_use]
    pub fn current_serial(&self) -> u64 {
        self.store.current().serial
    }

    /// Publishes `snapshot` as the next epoch; in-flight queries keep
    /// answering against the epoch they started with.
    pub fn publish(&self, snapshot: &NetworkSnapshot, at: SimTime) -> u64 {
        self.counters
            .epochs_published
            .fetch_add(1, Ordering::Relaxed);
        self.store.publish(snapshot.clone(), at)
    }

    /// Enqueues a query on its client's worker shard.
    #[must_use]
    pub fn submit(&self, client: ClientId, spec: QuerySpec) -> QueryTicket {
        let (tx, rx) = mpsc::channel();
        let shard = client.0 as usize % self.senders.len();
        self.senders[shard]
            .send(WorkerMsg::Query(QueryJob {
                client,
                spec,
                submitted: Instant::now(),
                reply: tx,
            }))
            .expect("verification worker hung up");
        QueryTicket { rx }
    }

    /// Submits and waits: the synchronous convenience the controller
    /// adapter uses.
    #[must_use]
    pub fn query(&self, client: ClientId, spec: QuerySpec) -> QueryResponse {
        self.submit(client, spec).wait()
    }

    /// Submits a whole workload and waits for every response (in submission
    /// order).
    #[must_use]
    pub fn query_all(&self, queries: &[(ClientId, QuerySpec)]) -> Vec<QueryResponse> {
        let tickets: Vec<QueryTicket> = queries
            .iter()
            .map(|(client, spec)| self.submit(*client, spec.clone()))
            .collect();
        tickets.into_iter().map(QueryTicket::wait).collect()
    }

    /// A point-in-time copy of the activity counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            batched_queries: self.counters.batched_queries.load(Ordering::Relaxed),
            epochs_published: self.counters.epochs_published.load(Ordering::Relaxed),
            cache_hits: self.cache.stats().hits(),
            cache_misses: self.cache.stats().misses(),
            cache_hit_rate: self.cache.stats().hit_rate(),
            workers: self.workers.len(),
        }
    }
}

impl Drop for VerificationService {
    fn drop(&mut self) {
        for sender in &self.senders {
            // A worker that already exited has hung up; that is fine.
            let _ = sender.send(WorkerMsg::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    rx: &mpsc::Receiver<WorkerMsg>,
    verifier: &LogicalVerifier,
    store: &EpochStore,
    cache: &ResultCache,
    counters: &Counters,
) {
    loop {
        // Block for the first job, then opportunistically drain the queue so
        // everything waiting shares one evaluator.
        let first = match rx.recv() {
            Ok(WorkerMsg::Query(job)) => job,
            Ok(WorkerMsg::Shutdown) | Err(_) => return,
        };
        let mut batch = vec![first];
        let mut shutdown = false;
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(WorkerMsg::Query(job)) => batch.push(job),
                Ok(WorkerMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Err(_) => break,
            }
        }

        let epoch = store.current();
        let mut evaluator = verifier.evaluator(&epoch.snapshot);
        counters.batches.fetch_add(1, Ordering::Relaxed);
        if batch.len() > 1 {
            counters
                .batched_queries
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        for job in batch {
            let result = match cache.get(epoch.serial, job.client, &job.spec) {
                Some(result) => result,
                None => {
                    let result = evaluator.answer(job.client, &job.spec);
                    cache.put(epoch.serial, job.client, job.spec.clone(), result.clone());
                    result
                }
            };
            counters.queries.fetch_add(1, Ordering::Relaxed);
            // The submitter may have given up waiting; that is not an error.
            let _ = job.reply.send(QueryResponse {
                client: job.client,
                spec: job.spec,
                result,
                epoch_serial: epoch.serial,
                latency: job.submitted.elapsed(),
            });
        }
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas::LocationMap;
    use rvaas_controlplane::benign_rules;
    use rvaas_topology::generators;

    fn service_over(
        topology: &Topology,
        workers: usize,
        cache: bool,
    ) -> (VerificationService, NetworkSnapshot) {
        let mut snapshot = NetworkSnapshot::new(SimTime::from_secs(1));
        for (switch, entry) in benign_rules(topology) {
            snapshot.record_installed(switch, entry, SimTime::from_millis(1));
        }
        let config = ServiceConfig::new(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(topology),
        })
        .with_workers(workers)
        .with_cache(cache);
        let service = VerificationService::new(topology.clone(), config);
        service.publish(&snapshot, SimTime::from_millis(1));
        (service, snapshot)
    }

    fn all_specs(topology: &Topology) -> Vec<QuerySpec> {
        let some_ip = topology.hosts().next().expect("hosts").ip;
        vec![
            QuerySpec::ReachableDestinations,
            QuerySpec::ReachingSources,
            QuerySpec::Isolation,
            QuerySpec::GeoLocation,
            QuerySpec::PathLength { to_ip: some_ip },
            QuerySpec::Neutrality,
        ]
    }

    #[test]
    fn batched_answers_equal_sequential_verifier_answers() {
        let topology = generators::leaf_spine(2, 4, 2, 1);
        let (service, snapshot) = service_over(&topology, 4, false);
        let verifier = LogicalVerifier::new(
            topology.clone(),
            VerifierConfig {
                use_history: false,
                locations: LocationMap::disclosed(&topology),
            },
        );
        let clients: Vec<ClientId> = (1..=4).map(ClientId).collect();
        let workload: Vec<(ClientId, QuerySpec)> = clients
            .iter()
            .flat_map(|c| all_specs(&topology).into_iter().map(move |s| (*c, s)))
            .collect();
        let responses = service.query_all(&workload);
        assert_eq!(responses.len(), workload.len());
        for response in &responses {
            let expected = verifier.answer(&snapshot, response.client, &response.spec);
            assert_eq!(
                response.result, expected,
                "service answer diverged for {:?}/{:?}",
                response.client, response.spec
            );
        }
        let stats = service.stats();
        assert_eq!(stats.queries, workload.len() as u64);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn cache_hits_repeat_queries_and_invalidates_on_epoch_advance() {
        let topology = generators::line(4, 2);
        let (service, mut snapshot) = service_over(&topology, 1, true);
        let first = service.query(ClientId(1), QuerySpec::Isolation);
        let again = service.query(ClientId(1), QuerySpec::Isolation);
        assert_eq!(first.result, again.result);
        assert_eq!(first.epoch_serial, again.epoch_serial);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "second identical query must hit");

        // Publishing a new epoch invalidates the cached generation even
        // though the result payload may be identical.
        snapshot.record_installed(
            rvaas_types::SwitchId(1),
            rvaas_openflow::FlowEntry::new(
                1,
                rvaas_openflow::FlowMatch::to_ip(0xdead),
                vec![rvaas_openflow::Action::Drop],
            ),
            SimTime::from_millis(5),
        );
        let serial = service.publish(&snapshot, SimTime::from_millis(5));
        let after = service.query(ClientId(1), QuerySpec::Isolation);
        assert_eq!(after.epoch_serial, serial);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "post-publish query must recompute");
        assert_eq!(stats.epochs_published, 2);
    }

    #[test]
    fn queries_answer_against_publish_time_epochs_under_churn() {
        let topology = generators::line(4, 2);
        let (service, mut snapshot) = service_over(&topology, 2, true);
        // Interleave publishes and queries; every response must carry a
        // serial that was current at some point and a well-formed result.
        for round in 0..20u64 {
            snapshot.record_installed(
                rvaas_types::SwitchId(1),
                rvaas_openflow::FlowEntry::new(
                    2,
                    rvaas_openflow::FlowMatch::to_ip(0x1000 + round as u32),
                    vec![rvaas_openflow::Action::Drop],
                ),
                SimTime::from_millis(round),
            );
            let serial = service.publish(&snapshot, SimTime::from_millis(round));
            let response = service.query(ClientId(1 + (round % 2) as u32), QuerySpec::Isolation);
            assert!(response.epoch_serial <= serial);
            assert!(response.epoch_serial >= 1);
        }
        assert_eq!(service.stats().queries, 20);
    }
}
