//! The query scheduler and sharded worker pool.
//!
//! Incoming queries are sharded across `N` OS-thread workers by client, so
//! one client's standing queries always land on the same worker (maximising
//! evaluator and cache locality). Each worker drains its queue into a batch
//! and answers the whole batch through **one** [`rvaas::QueryEvaluator`]:
//! per-host traversals are shared between every query in it.
//!
//! Each worker owns a long-lived [`rvaas::IncrementalModel`]: instead of
//! rebuilding the HSA network function from the snapshot for every batch,
//! the worker applies the rule-level deltas between the epoch it last
//! answered at and the epoch the batch runs against — `O(delta)` per epoch
//! advance — and falls back to a full rebuild only when the delta history
//! has been evicted (or the incremental engine is disabled /
//! history-mode verification is on).
//!
//! Workers always answer against the epoch that was current when their
//! batch started; the monitor can keep publishing new epochs concurrently
//! without blocking them (see [`crate::epoch::EpochStore`]).

use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rvaas::{IncrementalModel, LogicalVerifier, NetworkSnapshot, RuleChange};
use rvaas_client::{QueryResult, QuerySpec};
use rvaas_telemetry::{Counter, Gauge, Histogram, Registry, TraceContext, TraceId, TraceStage};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, SimTime};

use crate::cache::ResultCache;
use crate::config::ServiceConfig;
use crate::epoch::{EpochStore, Published, SnapshotEpoch};
use crate::error::ServiceError;

/// Upper bound on how many queued queries one worker folds into a batch.
const MAX_BATCH: usize = 64;

/// A completed query, as delivered back to the submitter.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The querying client.
    pub client: ClientId,
    /// The query.
    pub spec: QuerySpec,
    /// The verification result.
    pub result: QueryResult,
    /// The epoch serial the result was computed against.
    pub epoch_serial: u64,
    /// Wall-clock time from submission to completion.
    pub latency: Duration,
    /// Flight-recorder trace id of this query's event chain (minted at
    /// ingress, echoed back so the submitter can fetch the chain).
    pub trace: TraceId,
}

struct QueryJob {
    client: ClientId,
    spec: QuerySpec,
    submitted: Instant,
    trace: TraceContext,
    reply: mpsc::Sender<QueryResponse>,
}

enum WorkerMsg {
    Query(QueryJob),
    Shutdown,
}

/// A pending query's completion handle.
#[derive(Debug)]
pub struct QueryTicket {
    rx: mpsc::Receiver<QueryResponse>,
}

impl QueryTicket {
    /// Blocks until the worker delivers the response.
    ///
    /// # Panics
    ///
    /// Panics if the service was shut down before answering; the served
    /// network path uses [`QueryTicket::try_wait`] instead.
    #[must_use]
    pub fn wait(self) -> QueryResponse {
        self.try_wait()
            .expect("verification service dropped the query")
    }

    /// Blocks until the worker delivers the response.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::QueryDropped`] if the service shut down
    /// before answering.
    pub fn try_wait(self) -> Result<QueryResponse, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::QueryDropped)
    }
}

/// Handles into the shared metric [`Registry`], fetched once at service
/// construction so the hot path (worker loops, submit) records through pure
/// atomics and never touches the registry's mutex.
struct ServiceMetrics {
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    batched_queries: Arc<Counter>,
    epochs_published: Arc<Counter>,
    incremental_applies: Arc<Counter>,
    model_rebuilds: Arc<Counter>,
    delta_rules_applied: Arc<Counter>,
    shadow_bulk_rebuilds: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    workers: Arc<Gauge>,
    epoch_serial: Arc<Gauge>,
    query_latency: Arc<Histogram>,
    epoch_delta_rules: Arc<Histogram>,
    stage_model_sync: Arc<Histogram>,
    stage_eval: Arc<Histogram>,
    stage_publish: Arc<Histogram>,
    stage_cache_advance: Arc<Histogram>,
}

impl ServiceMetrics {
    fn new(registry: &Registry) -> Self {
        ServiceMetrics {
            queries: registry.counter(
                "rvaas_queries_total",
                "Queries answered (cached or computed).",
            ),
            batches: registry.counter("rvaas_batches_total", "Batches executed by workers."),
            batched_queries: registry.counter(
                "rvaas_batched_queries_total",
                "Queries answered as part of a batch of two or more.",
            ),
            epochs_published: registry.counter(
                "rvaas_epoch_publishes_total",
                "Epochs published through the service.",
            ),
            incremental_applies: registry.counter(
                "rvaas_incremental_applies_total",
                "Worker-model epoch advances served by applying a delta in place.",
            ),
            model_rebuilds: registry.counter(
                "rvaas_model_rebuilds_total",
                "Worker-model epoch advances that fell back to a full rebuild.",
            ),
            delta_rules_applied: registry.counter(
                "rvaas_delta_rules_applied_total",
                "Rule-level changes applied across all incremental advances.",
            ),
            shadow_bulk_rebuilds: registry.counter(
                "rvaas_shadow_bulk_rebuilds_total",
                "Publishes whose shadow model took the bulk-rebuild path (unbounded changed region).",
            ),
            queue_depth: registry.gauge(
                "rvaas_queue_depth",
                "Queries submitted but not yet answered.",
            ),
            workers: registry.gauge("rvaas_workers", "Worker threads in the pool."),
            epoch_serial: registry.gauge("rvaas_epoch_serial", "Serial of the current epoch."),
            query_latency: registry.histogram(
                "rvaas_query_latency_us",
                "Wall-clock query latency from submission to completion, in microseconds.",
            ),
            epoch_delta_rules: registry.histogram(
                "rvaas_epoch_delta_rules",
                "Rule-level size (added + removed) of each published epoch delta.",
            ),
            stage_model_sync: registry.stage_histogram("pool.model_sync"),
            stage_eval: registry.stage_histogram("pool.eval"),
            stage_publish: registry.stage_histogram("epoch.publish"),
            stage_cache_advance: registry.stage_histogram("cache.advance"),
        }
    }
}

/// A point-in-time copy of the service counters — a thin snapshot view over
/// the shared metric registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Queries answered (cached or computed).
    pub queries: u64,
    /// Batches executed by workers.
    pub batches: u64,
    /// Queries answered as part of a batch of two or more.
    pub batched_queries: u64,
    /// Epochs published through the service.
    pub epochs_published: u64,
    /// Worker-model epoch advances served by applying a delta in place.
    pub incremental_applies: u64,
    /// Worker-model epoch advances that fell back to a full rebuild.
    pub model_rebuilds: u64,
    /// Rule-level changes applied across all incremental advances.
    pub delta_rules_applied: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache entries carried across epoch advances (unaffected by
    /// the delta).
    pub cache_carried: u64,
    /// Result-cache entries invalidated by epoch advances.
    pub cache_invalidated: u64,
    /// Cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Number of worker threads.
    pub workers: usize,
    /// Median query latency in microseconds (0 until a query completes).
    pub latency_p50_us: u64,
    /// 95th-percentile query latency in microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile query latency in microseconds.
    pub latency_p99_us: u64,
}

/// The standalone verification service: epoch store + worker pool + cache.
pub struct VerificationService {
    topology: Topology,
    incremental: bool,
    store: Arc<EpochStore>,
    cache: Arc<ResultCache>,
    registry: Arc<Registry>,
    metrics: Arc<ServiceMetrics>,
    senders: Vec<mpsc::Sender<WorkerMsg>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for VerificationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerificationService")
            .field("workers", &self.workers.len())
            .field("incremental", &self.incremental)
            .field("current_serial", &self.store.current().serial)
            .finish()
    }
}

impl VerificationService {
    /// Starts the service over the trusted `topology`, with a fresh metric
    /// registry of its own.
    #[must_use]
    pub fn new(topology: Topology, config: ServiceConfig) -> Self {
        VerificationService::with_registry(topology, config, Registry::shared())
    }

    /// Starts the service recording into the shared `registry` — the one a
    /// `/metrics` endpoint should render.
    #[must_use]
    pub fn with_registry(
        topology: Topology,
        config: ServiceConfig,
        registry: Arc<Registry>,
    ) -> Self {
        // Shape the process-global flight recorder before the first event;
        // the slow-query threshold additionally applies live.
        rvaas_telemetry::trace::configure(
            config.settings.trace_ring_capacity,
            config.settings.slow_query_threshold_us,
        );
        let store = Arc::new(EpochStore::new(config.settings.max_delta_history.max(1)));
        store.attach_shadow_telemetry(&registry);
        store.attach_interest_topology(topology.clone());
        store.attach_interest_telemetry(&registry);
        let cache = Arc::new(ResultCache::with_registry(config.settings.cache, &registry));
        let metrics = Arc::new(ServiceMetrics::new(&registry));
        // History-mode verification folds recently *removed* rules into the
        // model; the incremental mirror tracks only installed state, so that
        // mode keeps the rebuild path.
        let incremental = config.settings.incremental && !config.verifier.use_history;
        let worker_count = config.settings.workers.max(1);
        metrics.workers.set(worker_count as i64);
        let mut senders = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            let mut model = IncrementalModel::new(topology.clone());
            model.attach_telemetry(&registry);
            let context = WorkerContext {
                verifier: LogicalVerifier::new(topology.clone(), config.verifier.clone()),
                model,
                model_serial: 0,
                incremental,
                store: Arc::clone(&store),
                cache: Arc::clone(&cache),
                metrics: Arc::clone(&metrics),
            };
            let handle = std::thread::Builder::new()
                .name(format!("rvaas-verify-{index}"))
                .spawn(move || worker_loop(&rx, context))
                .expect("spawning verification worker");
            senders.push(tx);
            workers.push(handle);
        }
        VerificationService {
            topology,
            incremental,
            store,
            cache,
            registry,
            metrics,
            senders,
            workers,
        }
    }

    /// The epoch store (shared with the sync server).
    #[must_use]
    pub fn store(&self) -> Arc<EpochStore> {
        Arc::clone(&self.store)
    }

    /// The metric registry every layer of this service records into; render
    /// it with [`Registry::render_text`] to serve `/metrics`.
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The trusted topology the service verifies against.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether the incremental verification engine is active.
    #[must_use]
    pub fn incremental_enabled(&self) -> bool {
        self.incremental
    }

    /// The current epoch serial.
    #[must_use]
    pub fn current_serial(&self) -> u64 {
        self.store.current().serial
    }

    /// Live result-cache entries (the `/v1/status` health snapshot reports
    /// this).
    #[must_use]
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// Publishes `snapshot` as the next epoch; in-flight queries keep
    /// answering against the epoch they started with. Cached results the
    /// delta cannot affect stay valid (when the incremental engine is on);
    /// the rest are invalidated.
    ///
    /// # Panics
    ///
    /// Panics when the epoch store rejects the publish (serial space
    /// exhausted); the served network path uses
    /// [`VerificationService::try_publish`] instead.
    pub fn publish(&self, snapshot: &NetworkSnapshot, at: SimTime) -> u64 {
        self.try_publish(snapshot, at)
            .expect("epoch publish failed")
    }

    /// Fallible form of [`VerificationService::publish`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PublishRejected`] when the epoch store cannot
    /// accept another epoch.
    pub fn try_publish(
        &self,
        snapshot: &NetworkSnapshot,
        at: SimTime,
    ) -> Result<u64, ServiceError> {
        self.metrics.epochs_published.inc();
        let published = {
            let _span = self.metrics.stage_publish.span();
            self.store.try_publish(snapshot.clone(), at)?
        };
        self.finish_publish(&published);
        Ok(published.serial)
    }

    /// Publishes a rule-level delta as the next epoch — the monitor's
    /// [`drain_changes`] output goes straight here, skipping the full-snapshot
    /// re-digest of [`VerificationService::publish`].
    ///
    /// # Panics
    ///
    /// Panics when the epoch store rejects the publish; the served network
    /// path uses [`VerificationService::try_publish_changes`].
    ///
    /// [`drain_changes`]: rvaas::ConfigMonitor::drain_changes
    pub fn publish_changes(&self, changes: &[RuleChange], at: SimTime) -> u64 {
        self.try_publish_changes(changes, at)
            .expect("epoch delta publish failed")
    }

    /// Fallible form of [`VerificationService::publish_changes`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PublishRejected`] when the epoch store cannot
    /// accept another epoch.
    pub fn try_publish_changes(
        &self,
        changes: &[RuleChange],
        at: SimTime,
    ) -> Result<u64, ServiceError> {
        self.metrics.epochs_published.inc();
        let published = {
            let _span = self.metrics.stage_publish.span();
            self.store.try_publish_changes(changes, at)?
        };
        self.finish_publish(&published);
        Ok(published.serial)
    }

    /// Post-publish bookkeeping shared by both publish paths: metrics plus
    /// the cache advance driven by the interest-space index's selection.
    fn finish_publish(&self, published: &Published) {
        self.metrics
            .epoch_serial
            .set(i64::try_from(published.serial).unwrap_or(i64::MAX));
        self.metrics
            .epoch_delta_rules
            .record(published.delta_rules as u64);
        if published.bulk_rebuild {
            self.metrics.shadow_bulk_rebuilds.inc();
        }
        let _span = self
            .metrics
            .stage_cache_advance
            .span_traced(published.trace);
        let before = self.cache.stats();
        if self.incremental {
            // Workers register every query in the interest index before
            // caching it, so the index's selection covers every cached
            // entry — an O(affected) test instead of the linear
            // query_affected scan per entry.
            let affected = &published.affected;
            self.cache.advance(published.serial, |client, spec| {
                affected.is_affected(client, spec)
            });
        } else {
            self.cache.advance(published.serial, |_, _| true);
        }
        let after = self.cache.stats();
        TraceContext::from_id(published.trace.0).event(
            TraceStage::CacheCarry,
            after.carried.saturating_sub(before.carried),
            after.invalidated.saturating_sub(before.invalidated),
        );
    }

    /// Enqueues a query on its client's worker shard.
    ///
    /// # Panics
    ///
    /// Panics if the pool is shutting down; the served network path uses
    /// [`VerificationService::try_submit`] instead.
    #[must_use]
    pub fn submit(&self, client: ClientId, spec: QuerySpec) -> QueryTicket {
        self.try_submit(client, spec)
            .expect("verification worker hung up")
    }

    /// Enqueues a query on its client's worker shard.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PoolUnavailable`] if the shard's worker has
    /// hung up (the service is shutting down or the thread died).
    pub fn try_submit(
        &self,
        client: ClientId,
        spec: QuerySpec,
    ) -> Result<QueryTicket, ServiceError> {
        self.try_submit_traced(client, spec, TraceContext::mint())
    }

    /// Enqueues a query under an existing trace context — the daemon's
    /// ingress layers mint the trace (so the ingress event leads the chain)
    /// and thread it through here.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PoolUnavailable`] if the shard's worker has
    /// hung up (the service is shutting down or the thread died).
    pub fn try_submit_traced(
        &self,
        client: ClientId,
        spec: QuerySpec,
        trace: TraceContext,
    ) -> Result<QueryTicket, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.metrics.queue_depth.inc();
        let shard = client.0 as usize % self.senders.len();
        trace.event(TraceStage::Dispatch, u64::from(client.0), shard as u64);
        if self.senders[shard]
            .send(WorkerMsg::Query(QueryJob {
                client,
                spec,
                submitted: Instant::now(),
                trace,
                reply: tx,
            }))
            .is_err()
        {
            self.metrics.queue_depth.dec();
            return Err(ServiceError::PoolUnavailable {
                context: "query submit",
            });
        }
        Ok(QueryTicket { rx })
    }

    /// Submits and waits: the synchronous convenience the controller
    /// adapter uses.
    #[must_use]
    pub fn query(&self, client: ClientId, spec: QuerySpec) -> QueryResponse {
        self.submit(client, spec).wait()
    }

    /// Submits and waits, reporting shutdown races as errors instead of
    /// panicking — what the daemon's network handlers call.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::PoolUnavailable`] or
    /// [`ServiceError::QueryDropped`] when the pool cannot answer.
    pub fn try_query(
        &self,
        client: ClientId,
        spec: QuerySpec,
    ) -> Result<QueryResponse, ServiceError> {
        self.try_submit(client, spec)?.try_wait()
    }

    /// Submits one query under an existing trace context and waits for the
    /// response; the fallible equivalent of [`Self::try_query`] for ingress
    /// layers that already minted the trace.
    ///
    /// # Errors
    ///
    /// Propagates the same failures as [`Self::try_submit`] and
    /// [`QueryTicket::try_wait`].
    pub fn try_query_traced(
        &self,
        client: ClientId,
        spec: QuerySpec,
        trace: TraceContext,
    ) -> Result<QueryResponse, ServiceError> {
        self.try_submit_traced(client, spec, trace)?.try_wait()
    }

    /// Submits a whole workload and waits for every response (in submission
    /// order).
    #[must_use]
    pub fn query_all(&self, queries: &[(ClientId, QuerySpec)]) -> Vec<QueryResponse> {
        let tickets: Vec<QueryTicket> = queries
            .iter()
            .map(|(client, spec)| self.submit(*client, spec.clone()))
            .collect();
        tickets.into_iter().map(QueryTicket::wait).collect()
    }

    /// Fallible form of [`VerificationService::query_all`]: submits
    /// everything before waiting (so one worker answers the whole set as a
    /// batch), failing as a unit if the pool goes away.
    ///
    /// # Errors
    ///
    /// Returns the first [`ServiceError`] hit while submitting or waiting.
    pub fn try_query_all(
        &self,
        queries: &[(ClientId, QuerySpec)],
    ) -> Result<Vec<QueryResponse>, ServiceError> {
        let tickets: Vec<QueryTicket> = queries
            .iter()
            .map(|(client, spec)| self.try_submit(*client, spec.clone()))
            .collect::<Result<_, _>>()?;
        tickets.into_iter().map(QueryTicket::try_wait).collect()
    }

    /// A point-in-time copy of the activity counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let cache = self.cache.stats();
        let latency = self.metrics.query_latency.snapshot();
        ServiceStats {
            queries: self.metrics.queries.get(),
            batches: self.metrics.batches.get(),
            batched_queries: self.metrics.batched_queries.get(),
            epochs_published: self.metrics.epochs_published.get(),
            incremental_applies: self.metrics.incremental_applies.get(),
            model_rebuilds: self.metrics.model_rebuilds.get(),
            delta_rules_applied: self.metrics.delta_rules_applied.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_carried: cache.carried,
            cache_invalidated: cache.invalidated,
            cache_hit_rate: cache.hit_rate(),
            workers: self.workers.len(),
            latency_p50_us: latency.p50(),
            latency_p95_us: latency.p95(),
            latency_p99_us: latency.p99(),
        }
    }
}

impl Drop for VerificationService {
    fn drop(&mut self) {
        for sender in &self.senders {
            // A worker that already exited has hung up; that is fine.
            let _ = sender.send(WorkerMsg::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Everything one worker thread owns.
struct WorkerContext {
    verifier: LogicalVerifier,
    /// The worker's long-lived HSA model, advanced by epoch deltas.
    model: IncrementalModel,
    /// Epoch serial the model currently mirrors.
    model_serial: u64,
    incremental: bool,
    store: Arc<EpochStore>,
    cache: Arc<ResultCache>,
    metrics: Arc<ServiceMetrics>,
}

impl WorkerContext {
    /// Brings the worker's model to `epoch`, preferring the delta path and
    /// falling back to a rebuild when the history no longer covers the gap —
    /// or when the delta rivals the epoch itself in size (per-rule
    /// incremental insertion computes an exposed region per rule, which only
    /// pays off for genuinely small deltas; the first sync from serial 0 is
    /// the canonical rebuild case).
    fn sync_model(&mut self, epoch: &SnapshotEpoch) {
        if self.model_serial == epoch.serial {
            return;
        }
        let delta = if self.model_serial == 0 {
            None
        } else {
            self.store.delta_between(self.model_serial, epoch.serial)
        };
        match delta {
            Some(delta)
                if delta.added_rules.len() + delta.removed_rules.len()
                    <= epoch.snapshot.rule_count() / 4 =>
            {
                let changes = delta.rule_changes();
                self.metrics.delta_rules_applied.add(changes.len() as u64);
                self.model.apply(&changes);
                self.metrics.incremental_applies.inc();
                if self.model.is_desynced() {
                    // A removal did not resolve against the mirror: the
                    // model can no longer be trusted — self-heal from the
                    // frozen epoch instead of answering from a wrong model
                    // forever.
                    self.model.rebuild_from(&epoch.snapshot);
                    self.metrics.model_rebuilds.inc();
                }
            }
            _ => {
                self.model.rebuild_from(&epoch.snapshot);
                self.metrics.model_rebuilds.inc();
            }
        }
        self.model_serial = epoch.serial;
    }
}

fn worker_loop(rx: &mpsc::Receiver<WorkerMsg>, mut ctx: WorkerContext) {
    loop {
        // Block for the first job, then opportunistically drain the queue so
        // everything waiting shares one evaluator.
        let first = match rx.recv() {
            Ok(WorkerMsg::Query(job)) => job,
            Ok(WorkerMsg::Shutdown) | Err(_) => return,
        };
        let mut batch = vec![first];
        let mut shutdown = false;
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(WorkerMsg::Query(job)) => batch.push(job),
                Ok(WorkerMsg::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Err(_) => break,
            }
        }

        let epoch = ctx.store.current();
        // The model sync benefits every job in the batch; its events are
        // attributed to the job that triggered it (the first).
        let batch_trace = batch[0].trace;
        let mut evaluator = if ctx.incremental {
            {
                let sync_hist = Arc::clone(&ctx.metrics.stage_model_sync);
                let _span = sync_hist.span_traced(batch_trace.id);
                let _ambient = batch_trace.enter();
                let from_serial = ctx.model_serial;
                ctx.sync_model(&epoch);
                if from_serial != epoch.serial {
                    batch_trace.event(TraceStage::ModelSync, from_serial, epoch.serial);
                }
            }
            ctx.verifier
                .evaluator_with(&epoch.snapshot, ctx.model.network_function())
        } else {
            ctx.verifier.evaluator(&epoch.snapshot)
        };
        ctx.metrics.batches.inc();
        if batch.len() > 1 {
            ctx.metrics.batched_queries.add(batch.len() as u64);
        }
        let _eval_span = ctx.metrics.stage_eval.span_traced(batch_trace.id);
        for job in batch {
            let _ambient = job.trace.enter();
            let result = match ctx.cache.get(epoch.serial, job.client, &job.spec) {
                Some(result) => {
                    job.trace
                        .event(TraceStage::CacheHit, epoch.serial, u64::from(job.client.0));
                    result
                }
                None => {
                    job.trace
                        .event(TraceStage::CacheMiss, epoch.serial, u64::from(job.client.0));
                    job.trace
                        .event(TraceStage::Eval, u64::from(job.client.0), epoch.serial);
                    if ctx.incremental {
                        // Register BEFORE caching: a publish that lands in
                        // between then already widens this query, so the
                        // cache-advance selection covers the entry.
                        ctx.store.register_interest(job.client, &job.spec);
                        let (result, footprint) =
                            evaluator.answer_with_footprint(job.client, &job.spec);
                        ctx.store
                            .refine_interest(job.client, &job.spec, epoch.serial, &footprint);
                        ctx.cache
                            .put(epoch.serial, job.client, job.spec.clone(), result.clone());
                        result
                    } else {
                        let result = evaluator.answer(job.client, &job.spec);
                        ctx.cache
                            .put(epoch.serial, job.client, job.spec.clone(), result.clone());
                        result
                    }
                }
            };
            let latency = job.submitted.elapsed();
            let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
            job.trace
                .event(TraceStage::Verdict, epoch.serial, latency_us);
            ctx.metrics
                .query_latency
                .record_traced(latency_us, job.trace.id);
            rvaas_telemetry::trace::recorder().capture_if_slow(job.trace.id, latency_us);
            ctx.metrics.queries.inc();
            ctx.metrics.queue_depth.dec();
            // The submitter may have given up waiting; that is not an error.
            let _ = job.reply.send(QueryResponse {
                client: job.client,
                spec: job.spec,
                result,
                epoch_serial: epoch.serial,
                latency,
                trace: job.trace.id,
            });
        }
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas::{LocationMap, VerifierConfig};
    use rvaas_controlplane::benign_rules;
    use rvaas_topology::generators;

    fn service_over(
        topology: &Topology,
        workers: usize,
        cache: bool,
    ) -> (VerificationService, NetworkSnapshot) {
        let mut snapshot = NetworkSnapshot::new(SimTime::from_secs(1));
        for (switch, entry) in benign_rules(topology) {
            snapshot.record_installed(switch, entry, SimTime::from_millis(1));
        }
        let config = ServiceConfig::new(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(topology),
        })
        .with_workers(workers)
        .with_cache(cache);
        let service = VerificationService::new(topology.clone(), config);
        service.publish(&snapshot, SimTime::from_millis(1));
        (service, snapshot)
    }

    fn all_specs(topology: &Topology) -> Vec<QuerySpec> {
        let some_ip = topology.hosts().next().expect("hosts").ip;
        vec![
            QuerySpec::ReachableDestinations,
            QuerySpec::ReachingSources,
            QuerySpec::Isolation,
            QuerySpec::GeoLocation,
            QuerySpec::PathLength { to_ip: some_ip },
            QuerySpec::Neutrality,
        ]
    }

    #[test]
    fn batched_answers_equal_sequential_verifier_answers() {
        let topology = generators::leaf_spine(2, 4, 2, 1);
        let (service, snapshot) = service_over(&topology, 4, false);
        let verifier = LogicalVerifier::new(
            topology.clone(),
            VerifierConfig {
                use_history: false,
                locations: LocationMap::disclosed(&topology),
            },
        );
        let clients: Vec<ClientId> = (1..=4).map(ClientId).collect();
        let workload: Vec<(ClientId, QuerySpec)> = clients
            .iter()
            .flat_map(|c| all_specs(&topology).into_iter().map(move |s| (*c, s)))
            .collect();
        let responses = service.query_all(&workload);
        assert_eq!(responses.len(), workload.len());
        for response in &responses {
            let expected = verifier.answer(&snapshot, response.client, &response.spec);
            assert_eq!(
                response.result, expected,
                "service answer diverged for {:?}/{:?}",
                response.client, response.spec
            );
        }
        let stats = service.stats();
        assert_eq!(stats.queries, workload.len() as u64);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn incremental_workers_agree_with_full_rebuild_workers_under_churn() {
        let topology = generators::line(6, 3);
        let (incremental_service, mut snapshot) = service_over(&topology, 1, false);
        assert!(incremental_service.incremental_enabled());
        let full_config = ServiceConfig::new(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(&topology),
        })
        .with_workers(1)
        .with_cache(false)
        .with_incremental(false);
        let full_service = VerificationService::new(topology.clone(), full_config);
        assert!(!full_service.incremental_enabled());
        full_service.publish(&snapshot, SimTime::from_millis(1));

        let workload: Vec<(ClientId, QuerySpec)> = (1..=3)
            .flat_map(|c| {
                all_specs(&topology)
                    .into_iter()
                    .map(move |s| (ClientId(c), s))
            })
            .collect();
        for round in 0..6u64 {
            snapshot.record_installed(
                rvaas_types::SwitchId(2),
                rvaas_openflow::FlowEntry::new(
                    400,
                    rvaas_openflow::FlowMatch::to_ip(0x3000 + round as u32),
                    vec![rvaas_openflow::Action::Drop],
                ),
                SimTime::from_millis(10 + round),
            );
            incremental_service.publish(&snapshot, SimTime::from_millis(10 + round));
            full_service.publish(&snapshot, SimTime::from_millis(10 + round));
            let inc = incremental_service.query_all(&workload);
            let full = full_service.query_all(&workload);
            for (a, b) in inc.iter().zip(full.iter()) {
                assert_eq!(
                    a.result, b.result,
                    "round {round}: incremental diverged for {:?}/{:?}",
                    a.client, a.spec
                );
            }
        }
        let stats = incremental_service.stats();
        assert!(
            stats.incremental_applies >= 1,
            "expected delta-driven model advances, got {stats:?}"
        );
        // The first sync from serial 0 is a bulk rebuild; the later rounds
        // each apply their one-rule delta in place.
        assert!(stats.delta_rules_applied >= 4, "got {stats:?}");
    }

    #[test]
    fn cache_hits_repeat_queries_and_invalidates_on_epoch_advance() {
        let topology = generators::line(4, 2);
        let (service, mut snapshot) = service_over(&topology, 1, true);
        let first = service.query(ClientId(1), QuerySpec::Isolation);
        let again = service.query(ClientId(1), QuerySpec::Isolation);
        assert_eq!(first.result, again.result);
        assert_eq!(first.epoch_serial, again.epoch_serial);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "second identical query must hit");

        // Publishing a new epoch whose delta overlaps the client's emission
        // space invalidates the entry even though the payload is identical.
        snapshot.record_installed(
            rvaas_types::SwitchId(1),
            rvaas_openflow::FlowEntry::new(
                1,
                rvaas_openflow::FlowMatch::to_ip(0xdead),
                vec![rvaas_openflow::Action::Drop],
            ),
            SimTime::from_millis(5),
        );
        let serial = service.publish(&snapshot, SimTime::from_millis(5));
        let after = service.query(ClientId(1), QuerySpec::Isolation);
        assert_eq!(after.epoch_serial, serial);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1, "post-publish query must recompute");
        assert_eq!(stats.epochs_published, 2);
        assert!(stats.cache_invalidated >= 1);
    }

    #[test]
    fn unaffected_queries_survive_epoch_advance_in_cache() {
        let topology = generators::line(4, 2);
        let (service, mut snapshot) = service_over(&topology, 1, true);
        let h3_ip = topology.hosts().find(|h| h.id.0 == 3).expect("host 3").ip;
        let spec = QuerySpec::PathLength { to_ip: h3_ip };
        let before = service.query(ClientId(1), spec.clone());

        // Churn pinned to a tenant pair that cannot intersect the path-length
        // query's (src ∈ client 1, dst = h3) interest: src and dst pinned to
        // addresses outside every relevant space, on a non-access switch...
        // the line generator attaches hosts everywhere, so use a switch and
        // addresses that only miss the header-space interest.
        snapshot.record_installed(
            rvaas_types::SwitchId(2),
            rvaas_openflow::FlowEntry::new(
                400,
                rvaas_openflow::FlowMatch::from_ip(0x7777_7777)
                    .field(rvaas_types::Field::IpDst, 0x8888_8888),
                vec![rvaas_openflow::Action::Drop],
            ),
            SimTime::from_millis(5),
        );
        let serial = service.publish(&snapshot, SimTime::from_millis(5));
        let after = service.query(ClientId(1), spec);
        assert_eq!(after.epoch_serial, serial);
        assert_eq!(after.result, before.result);
        let stats = service.stats();
        assert_eq!(
            stats.cache_hits, 1,
            "the carried-forward entry must answer at the new serial: {stats:?}"
        );
        assert!(stats.cache_carried >= 1);
    }

    #[test]
    fn queries_answer_against_publish_time_epochs_under_churn() {
        let topology = generators::line(4, 2);
        let (service, mut snapshot) = service_over(&topology, 2, true);
        // Interleave publishes and queries; every response must carry a
        // serial that was current at some point and a well-formed result.
        for round in 0..20u64 {
            snapshot.record_installed(
                rvaas_types::SwitchId(1),
                rvaas_openflow::FlowEntry::new(
                    2,
                    rvaas_openflow::FlowMatch::to_ip(0x1000 + round as u32),
                    vec![rvaas_openflow::Action::Drop],
                ),
                SimTime::from_millis(round),
            );
            let serial = service.publish(&snapshot, SimTime::from_millis(round));
            let response = service.query(ClientId(1 + (round % 2) as u32), QuerySpec::Isolation);
            assert!(response.epoch_serial <= serial);
            assert!(response.epoch_serial >= 1);
        }
        assert_eq!(service.stats().queries, 20);
    }

    /// Kills the worker pool in place, the way a shutdown race would: every
    /// worker drains its queue and exits, leaving the senders hung up.
    fn kill_workers(service: &mut VerificationService) {
        for sender in &service.senders {
            let _ = sender.send(WorkerMsg::Shutdown);
        }
        for worker in service.workers.drain(..) {
            let _ = worker.join();
        }
    }

    #[test]
    fn try_submit_and_try_query_report_pool_unavailable_after_shutdown() {
        let topology = generators::line(3, 1);
        let (mut service, _snapshot) = service_over(&topology, 2, false);
        kill_workers(&mut service);
        let err = service
            .try_submit(ClientId(1), QuerySpec::Isolation)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::PoolUnavailable {
                context: "query submit"
            }
        ));
        assert!(matches!(
            service.try_query(ClientId(1), QuerySpec::Isolation),
            Err(ServiceError::PoolUnavailable { .. })
        ));
        assert!(matches!(
            service.try_query_all(&[(ClientId(1), QuerySpec::Isolation)]),
            Err(ServiceError::PoolUnavailable { .. })
        ));
    }

    #[test]
    fn query_responses_carry_a_reconstructable_trace_chain() {
        let topology = generators::line(3, 1);
        let (service, _snapshot) = service_over(&topology, 1, true);
        let response = service.query(ClientId(1), QuerySpec::Isolation);
        assert!(!response.trace.is_none(), "default-on tracing mints an id");
        let chain = rvaas_telemetry::trace::recorder().chain(response.trace);
        let stages: Vec<TraceStage> = chain.iter().map(|e| e.stage).collect();
        for expected in [
            TraceStage::Dispatch,
            TraceStage::CacheMiss,
            TraceStage::Eval,
            TraceStage::Verdict,
        ] {
            assert!(
                stages.contains(&expected),
                "missing {expected:?}: {stages:?}"
            );
        }
        let dispatch = stages.iter().position(|s| *s == TraceStage::Dispatch);
        let verdict = stages.iter().position(|s| *s == TraceStage::Verdict);
        assert!(dispatch < verdict, "chain out of causal order: {stages:?}");
        assert!(
            chain.windows(2).all(|w| w[0].at_us <= w[1].at_us),
            "timestamps must be monotone within a chain"
        );

        // The repeat is served from cache, on a fresh trace of its own.
        let again = service.query(ClientId(1), QuerySpec::Isolation);
        assert_ne!(again.trace, response.trace);
        let chain = rvaas_telemetry::trace::recorder().chain(again.trace);
        assert!(chain.iter().any(|e| e.stage == TraceStage::CacheHit));
        assert!(chain.iter().all(|e| e.trace == again.trace));
    }

    #[test]
    fn ticket_abandoned_by_its_worker_reports_query_dropped() {
        // A worker that exits mid-batch drops the reply sender without
        // answering; the ticket must surface that as QueryDropped, not hang.
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let ticket = QueryTicket { rx };
        assert!(matches!(ticket.try_wait(), Err(ServiceError::QueryDropped)));
    }
}
