//! # rvaas-workloads
//!
//! Scenario and workload construction shared by the examples, the
//! integration tests and the benchmark harness.
//!
//! The central type is [`Scenario`]: a fully wired simulation — topology,
//! (possibly compromised) provider controller, RVaaS controller, and a client
//! agent on every host — built from a declarative [`ScenarioBuilder`]. The
//! scenario runs the simulator and exposes the *observable* outcome: the
//! signed query replies each client received, plus the controller statistics,
//! so experiments measure exactly what a real client could measure.
//!
//! The [`locations`] module builds degraded switch-location maps
//! (crowd-sourced / inferred) for the geo-location accuracy experiment.
//!
//! The [`service_load`] module drives the `rvaas-service` worker pool with
//! a many-client query workload under epoch churn — the service-plane
//! counterpart of the in-band scenario — and the [`churn`] module adds the
//! tenant-pinned churn workload plus the epoch-advance measurement driver
//! behind the incremental-verification experiment. The [`query_scale`]
//! module scales the standing-query population under fixed churn to show
//! epoch advance is `O(affected)`, not `O(standing queries)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod locations;
pub mod query_scale;
pub mod scenario;
pub mod service_load;

pub use churn::{
    run_incremental_churn, tenant_churn_round, IncrementalChurnConfig, IncrementalChurnReport,
};
pub use locations::{crowd_sourced_map, inferred_map};
pub use query_scale::{run_query_scale, synthetic_queries, QueryScaleConfig, QueryScaleReport};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioOutcome};
pub use service_load::{
    benign_snapshot, churn_round, clients_of, query_mix, round_robin_workload, run_service_load,
    ServiceLoadConfig, ServiceLoadReport,
};
