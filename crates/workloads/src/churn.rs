//! Tenant-pinned churn: the workload that exercises the incremental
//! verification engine.
//!
//! The generic [`churn_round`](crate::service_load::churn_round) installs
//! destination-only drop rules, which intersect *every* client's emission
//! space — realistic for blanket filtering, but the worst case for
//! affected-query computation. This module models the other common kind of
//! provider churn: **per-tenant reconfiguration**, where each changed rule is
//! pinned to one tenant's `(source, destination)` address pair (an
//! intra-tenant route update) and placed on transit switches. Under this
//! churn only the reconfigured tenants' standing queries can change, so the
//! incremental engine re-verifies a small affected subset while the
//! full-recomputation baseline re-verifies everyone.
//!
//! [`run_incremental_churn`] drives a [`VerificationService`] plus
//! [`SyncServer`] through rounds of tenant churn with every client holding
//! the full standing-query mix, measuring the **epoch-advance cost**:
//! snapshot publish (model update) plus standing-query reverification
//! through the sync protocol. Running it once with the incremental engine
//! and once with the full-rebuild baseline gives the speedup the `s2`
//! experiment reports.

use std::time::{Duration, Instant};

use rvaas::{LocationMap, NetworkSnapshot, VerifierConfig};
use rvaas_client::SyncSession;
use rvaas_openflow::{Action, FlowEntry, FlowMatch};
use rvaas_service::{ServiceSettings, SyncServer, VerificationService};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, Field, SimTime, SwitchId};

use crate::service_load::{benign_snapshot, clients_of, query_mix};

/// Priority of the tenant churn rules: above the benign admission rules so
/// the changed header region is actually exposed.
const PRIO_TENANT: u16 = 400;

/// Switches to place tenant churn on: transit switches without attached
/// hosts when the topology has them (leaf-spine spines, fat-tree aggregation
/// and core), any switch otherwise.
fn churn_switches(topology: &Topology) -> Vec<SwitchId> {
    let hostless: Vec<SwitchId> = topology
        .switches()
        .map(|s| s.id)
        .filter(|id| !topology.hosts().any(|h| h.attachment.switch == *id))
        .collect();
    if hostless.is_empty() {
        topology.switches().map(|s| s.id).collect()
    } else {
        hostless
    }
}

/// Applies one round of tenant-pinned churn to `snapshot`: a rotating window
/// of `churn_clients` clients each get `rules_per_client` fresh rules pinned
/// to their own `(src, dst)` host addresses (and the previous round's rules
/// removed). Returns the number of rule changes applied.
pub fn tenant_churn_round(
    topology: &Topology,
    snapshot: &mut NetworkSnapshot,
    round: u64,
    churn_clients: usize,
    rules_per_client: usize,
    at: SimTime,
) -> usize {
    // Remove exactly what the previous round's window installed, then
    // install this round's window. The vlan bit alternates per round so a
    // client churned at rounds of the same parity still sees its rules
    // leave and return through the digest deltas.
    let mut changes = 0;
    if round > 0 {
        changes += churn_window(
            topology,
            snapshot,
            round - 1,
            churn_clients,
            rules_per_client,
            at,
            false,
        );
    }
    changes += churn_window(
        topology,
        snapshot,
        round,
        churn_clients,
        rules_per_client,
        at,
        true,
    );
    changes
}

/// Installs (or removes) the tenant rules of `round`'s churn window.
fn churn_window(
    topology: &Topology,
    snapshot: &mut NetworkSnapshot,
    round: u64,
    churn_clients: usize,
    rules_per_client: usize,
    at: SimTime,
    install: bool,
) -> usize {
    let clients = clients_of(topology);
    if clients.is_empty() {
        return 0;
    }
    let switches = churn_switches(topology);
    let start = (round as usize).saturating_mul(churn_clients) % clients.len();
    let mut changes = 0;
    for slot in 0..churn_clients.min(clients.len()) {
        let client = clients[(start + slot) % clients.len()];
        let hosts = topology.hosts_of_client(client);
        if hosts.is_empty() {
            continue;
        }
        for i in 0..rules_per_client {
            let src = hosts[i % hosts.len()];
            let dst = hosts[(i + 1) % hosts.len()];
            let switch = switches[(slot + i) % switches.len()];
            let action = if dst.attachment.switch == switch {
                Action::Output(dst.attachment.port)
            } else {
                topology
                    .port_towards(switch, dst.attachment.switch)
                    .map_or(Action::Drop, Action::Output)
            };
            let flow_match = FlowMatch::from_ip(src.ip)
                .field(Field::IpDst, u64::from(dst.ip))
                .field(Field::Vlan, round % 2)
                .field(Field::L4Dst, i as u64);
            let entry = FlowEntry::new(PRIO_TENANT, flow_match, vec![action]);
            let installed = snapshot
                .table_of(switch)
                .iter()
                .any(|e| e.priority == entry.priority && e.flow_match == entry.flow_match);
            if install && !installed {
                snapshot.record_installed(switch, entry, at);
                changes += 1;
            } else if !install && installed {
                snapshot.record_removed(switch, &entry, at);
                changes += 1;
            }
        }
    }
    changes
}

/// Shape of one incremental-churn run.
#[derive(Debug, Clone)]
pub struct IncrementalChurnConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Whether the incremental engine is on (`false` = full-rebuild
    /// baseline: rebuild per batch, re-verify every standing query,
    /// generation-wide cache invalidation).
    pub incremental: bool,
    /// Churn/publish/sync rounds measured.
    pub rounds: usize,
    /// Clients reconfigured per round (the churn rate, in clients).
    pub churn_clients_per_round: usize,
    /// Rules installed (and the previous round's removed) per churned client
    /// per round.
    pub rules_per_client: usize,
}

/// What one incremental-churn run measured.
#[derive(Debug, Clone)]
pub struct IncrementalChurnReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Standing queries registered (clients × query mix).
    pub standing_queries: usize,
    /// Rule changes applied across all rounds.
    pub rule_changes: usize,
    /// Total wall-clock epoch-advance cost: churn + publish (model update +
    /// cache invalidation) + standing-query reverification via sync.
    pub epoch_advance_total: Duration,
    /// Mean epoch-advance cost per round.
    pub epoch_advance_avg: Duration,
    /// Standing queries re-verified inside deltas.
    pub reverified: u64,
    /// Standing queries skipped as provably unaffected.
    pub skipped: u64,
    /// Worker-model delta applications.
    pub incremental_applies: u64,
    /// Worker-model full rebuilds.
    pub model_rebuilds: u64,
    /// Result-cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Epoch serial after the final round.
    pub final_serial: u64,
    /// Median per-query latency in microseconds (from the service's
    /// `rvaas_query_latency_us` histogram; includes reverification queries).
    pub latency_p50_us: u64,
    /// 95th-percentile per-query latency in microseconds.
    pub latency_p95_us: u64,
    /// 99th-percentile per-query latency in microseconds.
    pub latency_p99_us: u64,
}

/// Runs `config.rounds` rounds of tenant churn against a fresh service with
/// every client subscribed to the full query mix, and measures the
/// epoch-advance cost.
#[must_use]
pub fn run_incremental_churn(
    topology: &Topology,
    config: &IncrementalChurnConfig,
) -> IncrementalChurnReport {
    let service = VerificationService::new(
        topology.clone(),
        ServiceSettings {
            workers: config.workers,
            incremental: config.incremental,
            ..ServiceSettings::default()
        }
        .into_config(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(topology),
        }),
    );
    let mut snapshot = benign_snapshot(topology);
    service.publish(&snapshot, SimTime::from_millis(1));
    let server = SyncServer::new(service.store(), 9);

    let clients = clients_of(topology);
    let mix = query_mix(topology);
    for client in &clients {
        for spec in &mix {
            server.subscribe(*client, spec.clone());
        }
    }
    let mut sessions: Vec<(ClientId, SyncSession)> = clients
        .iter()
        .map(|client| {
            let mut session = SyncSession::new();
            session
                .apply(&server.handle(&service, &session.request(*client)))
                .expect("initial reset applies");
            (*client, session)
        })
        .collect();

    let mut rule_changes = 0usize;
    let mut epoch_advance_total = Duration::ZERO;
    // Round 1 is an untimed warmup: it pays the one-off cold costs (worker
    // models' first full build, evaluator warm paths) that belong to service
    // start-up, not to steady-state epoch advancing.
    for round in 1..=(config.rounds + 1) as u64 {
        let at = SimTime::from_millis(10 + round);
        let started = Instant::now();
        rule_changes += tenant_churn_round(
            topology,
            &mut snapshot,
            round,
            config.churn_clients_per_round,
            config.rules_per_client,
            at,
        );
        service.publish(&snapshot, at);
        for (client, session) in &mut sessions {
            let response = server.handle(&service, &session.request(*client));
            session.apply(&response).expect("sync applies");
        }
        if round > 1 {
            epoch_advance_total += started.elapsed();
        }
    }

    let stats = service.stats();
    let reverify = server.reverify_stats();
    IncrementalChurnReport {
        rounds: config.rounds,
        standing_queries: clients.len() * mix.len(),
        rule_changes,
        epoch_advance_total,
        epoch_advance_avg: epoch_advance_total / config.rounds.max(1) as u32,
        reverified: reverify.reverified,
        skipped: reverify.skipped,
        incremental_applies: stats.incremental_applies,
        model_rebuilds: stats.model_rebuilds,
        cache_hit_rate: stats.cache_hit_rate,
        final_serial: service.current_serial(),
        latency_p50_us: stats.latency_p50_us,
        latency_p95_us: stats.latency_p95_us,
        latency_p99_us: stats.latency_p99_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_topology::generators;

    #[test]
    fn tenant_churn_installs_and_rotates_rules() {
        let topology = generators::leaf_spine(2, 4, 2, 1);
        let mut snapshot = benign_snapshot(&topology);
        let base = snapshot.rule_count();
        let added = tenant_churn_round(&topology, &mut snapshot, 0, 2, 3, SimTime::from_millis(2));
        assert_eq!(added, 6, "round 0 only installs");
        assert_eq!(snapshot.rule_count(), base + 6);
        // Round 1 installs 6 fresh rules and removes round 0's 6.
        let changed =
            tenant_churn_round(&topology, &mut snapshot, 1, 2, 3, SimTime::from_millis(3));
        assert_eq!(changed, 12);
        assert_eq!(snapshot.rule_count(), base + 6);
        // Churn lands on hostless (spine) switches only.
        let spines = churn_switches(&topology);
        assert!(!spines.is_empty());
        for spine in &spines {
            assert!(!topology.hosts().any(|h| h.attachment.switch == *spine));
        }
    }

    #[test]
    fn incremental_run_skips_unaffected_standing_queries() {
        // 4 clients (one per hosts-per-leaf slot), so churning one client
        // per round leaves three quarters of the standing queries untouched.
        let topology = generators::leaf_spine(2, 4, 4, 1);
        let config = IncrementalChurnConfig {
            workers: 1,
            incremental: true,
            rounds: 3,
            churn_clients_per_round: 1,
            rules_per_client: 2,
        };
        let report = run_incremental_churn(&topology, &config);
        assert_eq!(report.rounds, 3);
        assert!(report.rule_changes > 0);
        assert!(
            report.skipped > report.reverified,
            "tenant-pinned churn must leave most standing queries unaffected: {report:?}"
        );
        assert_eq!(
            report.final_serial, 5,
            "initial publish + warmup + one per measured round"
        );
        assert!(report.model_rebuilds <= 1, "delta path must carry the run");

        // The full-rebuild baseline re-verifies everything.
        let full = run_incremental_churn(
            &topology,
            &IncrementalChurnConfig {
                incremental: false,
                ..config
            },
        );
        assert_eq!(full.skipped, 0);
        assert!(full.reverified >= report.reverified);
    }
}
