//! A multi-client service-plane workload: many clients hammering the
//! [`VerificationService`] with standing queries while monitor churn keeps
//! publishing new epochs — the service-level analogue of the in-band
//! scenario harness, used by the `service_throughput` experiment and
//! reusable by future scaling work.

use std::time::{Duration, Instant};

use rvaas::{LocationMap, NetworkSnapshot, VerifierConfig};
use rvaas_client::QuerySpec;
use rvaas_controlplane::benign_rules;
use rvaas_service::{ServiceSettings, VerificationService};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, SimTime, SwitchId};

/// Shape of one service-load run.
#[derive(Debug, Clone)]
pub struct ServiceLoadConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Whether the result cache is consulted.
    pub cache_enabled: bool,
    /// Epoch rounds: each round optionally churns rules, publishes a new
    /// epoch, then issues a burst of queries.
    pub rounds: usize,
    /// Queries issued per round, spread round-robin over every client and
    /// query class.
    pub queries_per_round: usize,
    /// Flow rules added (and previous round's removed) per round; 0 keeps
    /// the epoch stable so repeated queries can hit the cache.
    pub churn_rules_per_round: usize,
}

impl Default for ServiceLoadConfig {
    fn default() -> Self {
        ServiceLoadConfig {
            workers: 4,
            cache_enabled: true,
            rounds: 4,
            queries_per_round: 64,
            churn_rules_per_round: 0,
        }
    }
}

/// What one service-load run measured.
#[derive(Debug, Clone)]
pub struct ServiceLoadReport {
    /// Queries answered.
    pub responses: usize,
    /// Wall-clock time spent issuing and answering all rounds.
    pub elapsed: Duration,
    /// Answered queries per wall-clock second.
    pub queries_per_sec: f64,
    /// Median per-query latency (from the service's shared latency
    /// histogram, `rvaas_query_latency_us`).
    pub p50_latency: Duration,
    /// 95th-percentile per-query latency.
    pub p95_latency: Duration,
    /// 99th-percentile per-query latency.
    pub p99_latency: Duration,
    /// Result-cache hit rate over the whole run.
    pub cache_hit_rate: f64,
    /// Epoch serial after the final round.
    pub final_serial: u64,
    /// Worker batches executed.
    pub batches: u64,
}

/// The standing query mix every client cycles through.
#[must_use]
pub fn query_mix(topology: &Topology) -> Vec<QuerySpec> {
    let some_ip = topology.hosts().next().map_or(0, |h| h.ip);
    vec![
        QuerySpec::ReachableDestinations,
        QuerySpec::ReachingSources,
        QuerySpec::Isolation,
        QuerySpec::GeoLocation,
        QuerySpec::PathLength { to_ip: some_ip },
        QuerySpec::Neutrality,
    ]
}

/// Every distinct client owning a host in `topology`.
#[must_use]
pub fn clients_of(topology: &Topology) -> Vec<ClientId> {
    let mut clients: Vec<ClientId> = topology.hosts().map(|h| h.owner).collect();
    clients.sort();
    clients.dedup();
    clients
}

/// The canonical `queries`-long workload over `topology`: clients round-robin
/// through [`query_mix`], so every configuration compared by the benchmarks
/// answers literally the same `(client, spec)` sequence.
#[must_use]
pub fn round_robin_workload(topology: &Topology, queries: usize) -> Vec<(ClientId, QuerySpec)> {
    let clients = clients_of(topology);
    let mix = query_mix(topology);
    (0..queries)
        .map(|i| {
            (
                clients[i % clients.len()],
                mix[(i / clients.len()) % mix.len()].clone(),
            )
        })
        .collect()
}

/// Builds the benign snapshot for `topology`.
#[must_use]
pub fn benign_snapshot(topology: &Topology) -> NetworkSnapshot {
    let mut snapshot = NetworkSnapshot::new(SimTime::from_secs(1));
    for (switch, entry) in benign_rules(topology) {
        snapshot.record_installed(switch, entry, SimTime::from_millis(1));
    }
    snapshot
}

/// Applies one round of churn to `snapshot`: installs `count` fresh
/// low-priority rules tagged with `round` and removes the previous round's,
/// so every epoch differs from its predecessor by `2 * count` digests.
pub fn churn_round(snapshot: &mut NetworkSnapshot, round: u64, count: usize, at: SimTime) {
    use rvaas_openflow::{Action, FlowEntry, FlowMatch};
    for i in 0..count as u32 {
        let tag = |r: u64| 0x00c0_0000 + (r as u32 % 2) * 0x1000 + i;
        snapshot.record_installed(
            SwitchId(1),
            FlowEntry::new(1, FlowMatch::to_ip(tag(round)), vec![Action::Drop]),
            at,
        );
        if round > 0 {
            let old = FlowEntry::new(1, FlowMatch::to_ip(tag(round - 1)), vec![Action::Drop]);
            // Only record removals of rules a previous round actually
            // installed; a phantom removal would pollute the snapshot's
            // removed-rule history (visible to history-based verification).
            let installed = snapshot
                .table_of(SwitchId(1))
                .iter()
                .any(|e| e.priority == old.priority && e.flow_match == old.flow_match);
            if installed {
                snapshot.record_removed(SwitchId(1), &old, at);
            }
        }
    }
}

/// Runs one service-load configuration against a fresh service instance and
/// reports throughput, latency percentiles and cache behaviour.
#[must_use]
pub fn run_service_load(topology: &Topology, config: &ServiceLoadConfig) -> ServiceLoadReport {
    let service = VerificationService::new(
        topology.clone(),
        ServiceSettings {
            workers: config.workers,
            cache: config.cache_enabled,
            ..ServiceSettings::default()
        }
        .into_config(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(topology),
        }),
    );
    let mut snapshot = benign_snapshot(topology);
    service.publish(&snapshot, SimTime::from_millis(1));

    let workload = round_robin_workload(topology, config.queries_per_round);
    let mut responses = 0usize;
    let started = Instant::now();
    for round in 0..config.rounds {
        if config.churn_rules_per_round > 0 {
            let at = SimTime::from_millis(10 + round as u64);
            churn_round(
                &mut snapshot,
                round as u64,
                config.churn_rules_per_round,
                at,
            );
            service.publish(&snapshot, at);
        }
        responses += service.query_all(&workload).len();
    }
    let elapsed = started.elapsed();
    // Percentiles come from the service's own latency histogram
    // (`rvaas_query_latency_us` in the shared registry) — the same numbers a
    // scrape of the metrics endpoint would report.
    let stats = service.stats();
    ServiceLoadReport {
        responses,
        elapsed,
        queries_per_sec: responses as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_latency: Duration::from_micros(stats.latency_p50_us),
        p95_latency: Duration::from_micros(stats.latency_p95_us),
        p99_latency: Duration::from_micros(stats.latency_p99_us),
        cache_hit_rate: stats.cache_hit_rate,
        final_serial: service.current_serial(),
        batches: stats.batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_topology::generators;

    #[test]
    fn load_run_answers_every_query_and_reports_sane_numbers() {
        let topology = generators::line(6, 3);
        let report = run_service_load(
            &topology,
            &ServiceLoadConfig {
                workers: 2,
                cache_enabled: true,
                rounds: 3,
                queries_per_round: 24,
                churn_rules_per_round: 0,
            },
        );
        assert_eq!(report.responses, 72);
        assert!(report.queries_per_sec > 0.0);
        assert!(report.p99_latency >= report.p50_latency);
        // Stable epoch + repeated mix ⇒ later rounds are pure cache hits.
        assert!(
            report.cache_hit_rate > 0.3,
            "expected cache reuse, got {}",
            report.cache_hit_rate
        );
        assert_eq!(report.final_serial, 1);
    }

    #[test]
    fn churn_advances_epochs_and_suppresses_cache_reuse() {
        let topology = generators::line(6, 3);
        let report = run_service_load(
            &topology,
            &ServiceLoadConfig {
                workers: 2,
                cache_enabled: true,
                rounds: 4,
                queries_per_round: 12,
                churn_rules_per_round: 2,
            },
        );
        assert_eq!(report.final_serial, 5, "initial publish + one per round");
        // Each round invalidates the previous round's cache generation, so
        // the hit rate stays well below the no-churn case.
        assert!(
            report.cache_hit_rate < 0.75,
            "churn should limit reuse, got {}",
            report.cache_hit_rate
        );
    }
}
