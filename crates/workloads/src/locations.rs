//! Degraded switch-location knowledge for the geo-location experiments.
//!
//! Paper Section IV-B2 lists three ways RVaaS can learn switch locations:
//! disclosure by the infrastructure provider, crowd-sourcing from clients,
//! and passive inference (geo-IP, DNS, timezones). Only disclosure is exact;
//! the other two are modelled here as controlled degradations of the ground
//! truth so that the geo-accuracy experiment can sweep their quality.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use rvaas::LocationMap;
use rvaas_topology::Topology;
use rvaas_types::Region;

/// Crowd-sourced locations: only switches "near" a reporting client are
/// known. `coverage` is the fraction of switches whose region is learnt
/// (selected uniformly at random); the rest stay unknown.
#[must_use]
pub fn crowd_sourced_map(topology: &Topology, coverage: f64, seed: u64) -> LocationMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut switches: Vec<_> = topology.switches().collect();
    switches.shuffle(&mut rng);
    let known = ((switches.len() as f64) * coverage.clamp(0.0, 1.0)).round() as usize;
    let mut map = LocationMap::new();
    for sw in switches.into_iter().take(known) {
        map.set(sw.id, sw.location.region.clone());
    }
    map
}

/// Inferred locations (geo-IP / DNS / timezone estimation): every switch gets
/// *some* region, but each is wrong with probability `error_rate` (replaced
/// by a region drawn from the label pool).
#[must_use]
pub fn inferred_map(
    topology: &Topology,
    error_rate: f64,
    label_pool: &[&str],
    seed: u64,
) -> LocationMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = LocationMap::new();
    for sw in topology.switches() {
        let truth = sw.location.region.clone();
        let region = if rng.gen_bool(error_rate.clamp(0.0, 1.0)) && !label_pool.is_empty() {
            // Pick a wrong label if possible.
            let wrong: Vec<&&str> = label_pool.iter().filter(|l| **l != truth.label()).collect();
            match wrong.choose(&mut rng) {
                Some(l) => Region::new(**l),
                None => truth,
            }
        } else {
            truth
        };
        map.set(sw.id, region);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_topology::generators;

    #[test]
    fn crowd_sourced_coverage_controls_known_count() {
        let topo = generators::line(10, 2);
        assert_eq!(crowd_sourced_map(&topo, 0.0, 1).known_count(), 0);
        assert_eq!(crowd_sourced_map(&topo, 0.5, 1).known_count(), 5);
        assert_eq!(crowd_sourced_map(&topo, 1.0, 1).known_count(), 10);
        // Out-of-range coverage is clamped.
        assert_eq!(crowd_sourced_map(&topo, 2.0, 1).known_count(), 10);
    }

    #[test]
    fn crowd_sourced_known_entries_are_correct() {
        let topo = generators::line(8, 2);
        let map = crowd_sourced_map(&topo, 0.5, 7);
        for sw in topo.switches() {
            let learnt = map.region_of(sw.id);
            if !learnt.is_unknown() {
                assert_eq!(learnt, sw.location.region);
            }
        }
    }

    #[test]
    fn inferred_map_error_rate_extremes() {
        let topo = generators::line(10, 2);
        let labels = rvaas_topology::generators::DEFAULT_REGIONS;
        let exact = inferred_map(&topo, 0.0, &labels, 3);
        for sw in topo.switches() {
            assert_eq!(exact.region_of(sw.id), sw.location.region);
        }
        let noisy = inferred_map(&topo, 1.0, &labels, 3);
        let wrong = topo
            .switches()
            .filter(|sw| noisy.region_of(sw.id) != sw.location.region)
            .count();
        assert_eq!(wrong, 10, "with error rate 1.0 every label is wrong");
        // All switches still have *some* (non-unknown) label.
        assert!(topo
            .switches()
            .all(|sw| !noisy.region_of(sw.id).is_unknown()));
    }

    #[test]
    fn maps_are_deterministic_per_seed() {
        let topo = generators::line(10, 2);
        let labels = rvaas_topology::generators::DEFAULT_REGIONS;
        assert_eq!(
            crowd_sourced_map(&topo, 0.5, 42),
            crowd_sourced_map(&topo, 0.5, 42)
        );
        assert_eq!(
            inferred_map(&topo, 0.3, &labels, 42),
            inferred_map(&topo, 0.3, &labels, 42)
        );
    }
}
