//! The end-to-end scenario harness.

use rvaas::{MonitorConfig, RvaasConfig, RvaasController, RvaasStats, VerifierConfig};
use rvaas_client::{
    decode_inband, ClientAgent, ClientAgentConfig, InbandMessage, QueryReply, QuerySpec,
};
use rvaas_controlplane::{ProviderController, ScheduledAttack};
use rvaas_crypto::{Keypair, SignatureScheme};
use rvaas_netsim::{Network, NetworkConfig};
use rvaas_service::{ServiceBackend, ServiceSettings};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, HostId, SimTime};

/// Builder for a full RVaaS scenario.
#[derive(Debug)]
pub struct ScenarioBuilder {
    topology: Topology,
    attacks: Vec<ScheduledAttack>,
    queries: Vec<(HostId, SimTime, QuerySpec)>,
    monitor: Option<MonitorConfig>,
    verifier: Option<VerifierConfig>,
    network: NetworkConfig,
    unresponsive_hosts: Vec<HostId>,
    auth_timeout: SimTime,
    seed: u64,
    service_workers: Option<usize>,
}

impl ScenarioBuilder {
    /// Starts a scenario over `topology`.
    #[must_use]
    pub fn new(topology: Topology) -> Self {
        ScenarioBuilder {
            topology,
            attacks: Vec::new(),
            queries: Vec::new(),
            monitor: None,
            verifier: None,
            network: NetworkConfig::default(),
            unresponsive_hosts: Vec::new(),
            auth_timeout: SimTime::from_millis(5),
            seed: 0,
            service_workers: None,
        }
    }

    /// Adds a scheduled attack executed by the compromised provider.
    #[must_use]
    pub fn attack(mut self, attack: ScheduledAttack) -> Self {
        self.attacks.push(attack);
        self
    }

    /// Schedules a query issued by the agent on `host` at time `at`.
    #[must_use]
    pub fn query(mut self, host: HostId, at: SimTime, spec: QuerySpec) -> Self {
        self.queries.push((host, at, spec));
        self
    }

    /// Overrides the RVaaS monitoring configuration.
    #[must_use]
    pub fn monitor(mut self, monitor: MonitorConfig) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Overrides the RVaaS verifier configuration.
    #[must_use]
    pub fn verifier(mut self, verifier: VerifierConfig) -> Self {
        self.verifier = Some(verifier);
        self
    }

    /// Overrides the simulator configuration.
    #[must_use]
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Marks hosts whose agents will not answer authentication requests.
    #[must_use]
    pub fn unresponsive(mut self, hosts: impl IntoIterator<Item = HostId>) -> Self {
        self.unresponsive_hosts.extend(hosts);
        self
    }

    /// Sets the RVaaS authentication-round timeout.
    #[must_use]
    pub fn auth_timeout(mut self, timeout: SimTime) -> Self {
        self.auth_timeout = timeout;
        self
    }

    /// Sets the key/simulation seed (reproducibility knob).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Routes the RVaaS controller's logical analysis through the
    /// `rvaas-service` worker-pool service plane with `workers` threads,
    /// instead of answering inline in the event handler.
    #[must_use]
    pub fn service_backend(mut self, workers: usize) -> Self {
        self.service_workers = Some(workers.max(1));
        self
    }

    /// Wires everything together.
    #[must_use]
    pub fn build(self) -> Scenario {
        let mut rvaas_config = RvaasConfig::new(self.topology.clone());
        if let Some(m) = self.monitor {
            rvaas_config.monitor = m;
        }
        if let Some(v) = self.verifier {
            rvaas_config.verifier = v;
        }
        rvaas_config.auth_timeout = self.auth_timeout;

        let keypair = Keypair::generate(SignatureScheme::HmacOracle, 0x5000 + self.seed);
        let mut rvaas = match self.service_workers {
            None => RvaasController::new(rvaas_config, keypair),
            Some(workers) => {
                let backend = ServiceBackend::new(
                    self.topology.clone(),
                    ServiceSettings {
                        workers,
                        ..ServiceSettings::default()
                    }
                    .into_config(rvaas_config.verifier.clone()),
                );
                RvaasController::with_backend(rvaas_config, keypair, Box::new(backend))
            }
        };
        let rvaas_pk = rvaas.public_key();

        let mut agent_boxes = Vec::new();
        for host in self.topology.hosts() {
            let keypair = Keypair::generate(
                SignatureScheme::HmacOracle,
                0x6000 + self.seed * 1000 + u64::from(host.owner.0),
            );
            rvaas.register_client(host.owner, keypair.public_key());
            let scheduled: Vec<(SimTime, QuerySpec)> = self
                .queries
                .iter()
                .filter(|(h, _, _)| *h == host.id)
                .map(|(_, at, spec)| (*at, spec.clone()))
                .collect();
            let agent = ClientAgent::new(
                ClientAgentConfig {
                    client: host.owner,
                    rvaas_key: rvaas_pk,
                    respond_to_auth: !self.unresponsive_hosts.contains(&host.id),
                    scheduled_queries: scheduled,
                },
                keypair,
            );
            agent_boxes.push((host.id, agent));
        }

        let mut network_config = self.network;
        network_config.seed = self.seed;
        let mut net = Network::new(self.topology.clone(), network_config);
        net.add_controller(Box::new(ProviderController::compromised(
            self.topology.clone(),
            self.attacks,
        )));
        let rvaas_handle = net.add_controller(Box::new(rvaas));
        for (host, agent) in agent_boxes {
            net.attach_host(host, Box::new(agent))
                .expect("topology host exists");
        }
        Scenario {
            net,
            topology: self.topology,
            rvaas_controller_index: rvaas_handle.0,
        }
    }
}

/// A fully wired scenario ready to run.
pub struct Scenario {
    net: Network,
    topology: Topology,
    rvaas_controller_index: usize,
}

/// What an experiment can observe after running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// All verified query replies, as `(receiving host, reply)` pairs.
    pub replies: Vec<(HostId, QueryReply)>,
    /// RVaaS controller statistics (None until the scenario has run; the
    /// controller is owned by the simulator).
    pub total_control_messages: u64,
    /// Packet-In count observed by the simulator.
    pub packet_ins: u64,
    /// Packet-Out count observed by the simulator.
    pub packet_outs: u64,
}

impl Scenario {
    /// The topology under simulation.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the underlying simulator (for advanced experiments).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read access to the underlying simulator.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Index of the RVaaS controller within the simulator's controller list.
    #[must_use]
    pub fn rvaas_controller_index(&self) -> usize {
        self.rvaas_controller_index
    }

    /// Runs the scenario until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.net.run_until(deadline);
    }

    /// Collects the observable outcome so far.
    #[must_use]
    pub fn outcome(&self) -> ScenarioOutcome {
        let mut replies = Vec::new();
        for delivery in self.net.deliveries() {
            if let Ok(InbandMessage::Reply(reply)) = decode_inband(&delivery.packet.payload) {
                replies.push((delivery.host, reply));
            }
        }
        ScenarioOutcome {
            replies,
            total_control_messages: self.net.stats().control_total(),
            packet_ins: self.net.stats().packet_ins,
            packet_outs: self.net.stats().packet_outs,
        }
    }

    /// The query replies delivered to a specific host.
    #[must_use]
    pub fn replies_for(&self, host: HostId) -> Vec<QueryReply> {
        self.outcome()
            .replies
            .into_iter()
            .filter(|(h, _)| *h == host)
            .map(|(_, r)| r)
            .collect()
    }

    /// The query replies delivered to any host of `client`.
    #[must_use]
    pub fn replies_for_client(&self, client: ClientId) -> Vec<QueryReply> {
        let hosts: Vec<HostId> = self
            .topology
            .hosts_of_client(client)
            .iter()
            .map(|h| h.id)
            .collect();
        self.outcome()
            .replies
            .into_iter()
            .filter(|(h, _)| hosts.contains(h))
            .map(|(_, r)| r)
            .collect()
    }

    /// Statistics of the engine-owned RVaaS controller, read back out via
    /// the simulator's downcast accessor.
    #[must_use]
    pub fn rvaas_stats(&self) -> RvaasStats {
        self.net
            .controller_app(rvaas_netsim::ControllerHandle(self.rvaas_controller_index))
            .and_then(|app| app.downcast_ref::<RvaasController>())
            .map(RvaasController::stats)
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("switches", &self.topology.switch_count())
            .field("hosts", &self.topology.host_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_client::QueryResult;
    use rvaas_controlplane::Attack;
    use rvaas_topology::generators;

    #[test]
    fn scenario_builds_and_answers_queries() {
        let topo = generators::line(4, 2);
        let mut scenario = ScenarioBuilder::new(topo)
            .query(HostId(1), SimTime::from_millis(5), QuerySpec::Isolation)
            .seed(3)
            .build();
        scenario.run_until(SimTime::from_millis(60));
        let replies = scenario.replies_for(HostId(1));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].result,
            QueryResult::IsolationStatus { isolated: true, .. }
        ));
        let outcome = scenario.outcome();
        assert!(outcome.packet_ins >= 1);
        assert!(outcome.total_control_messages > 0);
        assert_eq!(scenario.rvaas_controller_index(), 1);
        let stats = scenario.rvaas_stats();
        assert_eq!(stats.queries_received, 1);
        assert_eq!(stats.queries_answered, 1);
    }

    #[test]
    fn scenario_with_service_backend_matches_inline_answers() {
        let topo = generators::line(4, 2);
        let run = |workers: Option<usize>| {
            let mut builder = ScenarioBuilder::new(topo.clone())
                .query(HostId(1), SimTime::from_millis(5), QuerySpec::Isolation)
                .query(HostId(2), SimTime::from_millis(6), QuerySpec::GeoLocation)
                .seed(4);
            if let Some(w) = workers {
                builder = builder.service_backend(w);
            }
            let mut scenario = builder.build();
            scenario.run_until(SimTime::from_millis(80));
            (
                scenario.replies_for(HostId(1)),
                scenario.replies_for(HostId(2)),
                scenario.rvaas_stats(),
            )
        };
        let (inline_h1, inline_h2, inline_stats) = run(None);
        let (svc_h1, svc_h2, svc_stats) = run(Some(3));
        assert_eq!(inline_h1.len(), 1);
        assert_eq!(svc_h1.len(), 1);
        assert_eq!(svc_h1[0].result, inline_h1[0].result);
        assert_eq!(svc_h2[0].result, inline_h2[0].result);
        assert_eq!(svc_stats.queries_answered, inline_stats.queries_answered);
    }

    #[test]
    fn attacked_scenario_detects_join() {
        let topo = generators::line(4, 2);
        let mut scenario = ScenarioBuilder::new(topo)
            .attack(ScheduledAttack::persistent(
                Attack::Join {
                    attacker_host: HostId(2),
                    victim_client: ClientId(1),
                },
                SimTime::from_millis(2),
            ))
            .query(HostId(1), SimTime::from_millis(10), QuerySpec::Isolation)
            .build();
        scenario.run_until(SimTime::from_millis(80));
        let replies = scenario.replies_for_client(ClientId(1));
        assert_eq!(replies.len(), 1);
        assert!(matches!(
            replies[0].result,
            QueryResult::IsolationStatus {
                isolated: false,
                ..
            }
        ));
    }

    #[test]
    fn unresponsive_hosts_reduce_auth_replies() {
        let topo = generators::line(4, 2);
        let mut scenario = ScenarioBuilder::new(topo)
            .query(
                HostId(1),
                SimTime::from_millis(5),
                QuerySpec::ReachableDestinations,
            )
            .unresponsive([HostId(3)])
            .build();
        scenario.run_until(SimTime::from_millis(80));
        let replies = scenario.replies_for(HostId(1));
        assert_eq!(replies.len(), 1);
        assert!(replies[0].auth_replies_received < replies[0].auth_requests_sent);
    }
}
