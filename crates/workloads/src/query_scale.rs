//! Standing-query population scaling: the workload behind the `s3`
//! (`query_scale`) experiment.
//!
//! The interest-space index exists so the epoch-advance cost is governed by
//! the *churn* (how many standing queries a rule change can actually affect),
//! not by the *population* (how many standing queries are registered). This
//! module measures exactly that claim: it registers a large synthetic
//! standing-query population on top of the standard per-client mix, drives a
//! fixed tenant-churn rate through publish + sync rounds, and reports the
//! epoch-advance latency plus how many standing queries were re-verified
//! versus skipped. Running it across population scale points (the `s3`
//! experiment uses 10k/30k/100k, a smoke run 200/1k) shows whether advancing
//! an epoch is `O(affected)` — flat across populations — or `O(standing
//! queries)` — growing with them.
//!
//! The synthetic population is made of [`QuerySpec::PathLength`] probes to
//! distinct unroutable destinations: every spec is unique (so the population
//! is real, not deduplicated), its interest cubes pin `(src, dst)` pairs the
//! tenant churn never touches (so a *sound* index must skip it), and its
//! verdict is trivially constant (so the rare conservative epoch stays
//! cheap).
//!
//! [`run_query_scale`] also micro-benchmarks the affected-query selection in
//! isolation: the same changed region is evaluated once through the linear
//! scan ([`query_affected`] per registered query — the pre-index publish
//! path) and once through [`InterestIndex::affected`], giving the
//! linear-versus-indexed selection latencies the CI gate compares.

use std::time::{Duration, Instant};

use rvaas::{
    query_affected, IncrementalModel, InterestIndex, LocationMap, RuleChange, VerifierConfig,
};
use rvaas_client::{QuerySpec, SyncSession};
use rvaas_openflow::{Action, FlowEntry, FlowMatch};
use rvaas_service::{ServiceSettings, SyncServer, VerificationService};
use rvaas_topology::Topology;
use rvaas_types::{ClientId, Field, SimTime, SwitchId};

use crate::churn::tenant_churn_round;
use crate::service_load::{benign_snapshot, clients_of, query_mix};

/// Base of the unroutable destination block the synthetic standing queries
/// probe (class-A space no generator assigns hosts from).
const SYNTHETIC_DST_BASE: u32 = 0x0b00_0000;

/// The synthetic standing-query population: `population` distinct
/// [`QuerySpec::PathLength`] probes to unroutable destinations, spread
/// round-robin over `clients`.
#[must_use]
pub fn synthetic_queries(clients: &[ClientId], population: usize) -> Vec<(ClientId, QuerySpec)> {
    (0..population)
        .map(|i| {
            (
                clients[i % clients.len()],
                QuerySpec::PathLength {
                    to_ip: SYNTHETIC_DST_BASE + i as u32,
                },
            )
        })
        .collect()
}

/// Shape of one query-scale run.
#[derive(Debug, Clone)]
pub struct QueryScaleConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Synthetic standing queries registered on top of the per-client mix.
    pub synthetic_queries: usize,
    /// Churn/publish/sync rounds measured (plus one untimed warmup).
    pub rounds: usize,
    /// Clients reconfigured per round — the churn rate, held fixed across
    /// scale points so only the population varies.
    pub churn_clients_per_round: usize,
    /// Rules installed (and the previous round's removed) per churned client
    /// per round.
    pub rules_per_client: usize,
    /// Iterations of the linear-versus-indexed selection micro-benchmark.
    pub selection_probes: usize,
}

/// What one query-scale run measured.
#[derive(Debug, Clone)]
pub struct QueryScaleReport {
    /// Standing queries registered (per-client mix + synthetic population).
    pub standing_queries: usize,
    /// Rounds measured.
    pub rounds: usize,
    /// Rule changes applied across all measured rounds.
    pub rule_changes: usize,
    /// Total wall-clock epoch-advance cost across the measured rounds:
    /// churn + publish (index advance, cache invalidation) + every client's
    /// sync round trip (delta serve + affected-query reverification).
    pub epoch_advance_total: Duration,
    /// Mean epoch-advance cost per round.
    pub epoch_advance_avg: Duration,
    /// Standing queries re-verified inside deltas (should track the churn
    /// rate, not the population).
    pub reverified: u64,
    /// Standing queries skipped as provably unaffected.
    pub skipped: u64,
    /// Mean latency of one indexed affected-query selection
    /// ([`InterestIndex::affected`]) over the full registered population.
    pub indexed_selection_avg: Duration,
    /// Mean latency of one linear-scan selection ([`query_affected`] per
    /// registered query) over the same population and region.
    pub linear_selection_avg: Duration,
    /// Epoch serial after the final round.
    pub final_serial: u64,
}

/// One tenant-pinned rule change representative of the churn the measured
/// rounds apply: the first churn client's `(src, dst)` pair on a transit
/// switch, as a standalone batch for the selection micro-benchmark.
fn probe_changes(topology: &Topology) -> Vec<RuleChange> {
    let clients = clients_of(topology);
    let hosts = topology.hosts_of_client(clients[0]);
    let (src, dst) = (hosts[0], hosts[1 % hosts.len()]);
    let switch = topology
        .switches()
        .map(|s| s.id)
        .find(|id| !topology.hosts().any(|h| h.attachment.switch == *id))
        .unwrap_or(SwitchId(1));
    let entry = FlowEntry::new(
        400,
        FlowMatch::from_ip(src.ip).field(Field::IpDst, u64::from(dst.ip)),
        vec![Action::Drop],
    );
    vec![RuleChange::installed(switch, entry)]
}

/// Runs one query-scale configuration: registers the population, drives
/// `config.rounds` tenant-churn rounds through publish + sync, and
/// micro-benchmarks the selection paths.
///
/// # Panics
///
/// Panics when `topology` has no client-owned hosts — the population needs
/// clients to attach to.
#[must_use]
pub fn run_query_scale(topology: &Topology, config: &QueryScaleConfig) -> QueryScaleReport {
    let clients = clients_of(topology);
    assert!(
        !clients.is_empty(),
        "query-scale workload needs client-owned hosts"
    );
    let mix = query_mix(topology);
    let synthetic = synthetic_queries(&clients, config.synthetic_queries);
    let standing_queries = clients.len() * mix.len() + synthetic.len();

    let service = VerificationService::new(
        topology.clone(),
        ServiceSettings {
            workers: config.workers,
            incremental: true,
            ..ServiceSettings::default()
        }
        .into_config(VerifierConfig {
            use_history: false,
            locations: LocationMap::disclosed(topology),
        }),
    );
    let mut snapshot = benign_snapshot(topology);
    service.publish(&snapshot, SimTime::from_millis(1));
    let server = SyncServer::new(service.store(), 9);

    for client in &clients {
        for spec in &mix {
            server.subscribe(*client, spec.clone());
        }
    }
    for (client, spec) in &synthetic {
        server.subscribe(*client, spec.clone());
    }
    let mut sessions: Vec<(ClientId, SyncSession)> = clients
        .iter()
        .map(|client| {
            let mut session = SyncSession::new();
            session
                .apply(&server.handle(&service, &session.request(*client)))
                .expect("initial reset applies");
            (*client, session)
        })
        .collect();

    let mut rule_changes = 0usize;
    let mut epoch_advance_total = Duration::ZERO;
    // Round 1 is an untimed warmup, as in the incremental-churn driver: it
    // pays the one-off cold costs that belong to service start-up.
    for round in 1..=(config.rounds + 1) as u64 {
        let at = SimTime::from_millis(10 + round);
        let started = Instant::now();
        let changes = tenant_churn_round(
            topology,
            &mut snapshot,
            round,
            config.churn_clients_per_round,
            config.rules_per_client,
            at,
        );
        service.publish(&snapshot, at);
        for (client, session) in &mut sessions {
            let response = server.handle(&service, &session.request(*client));
            session.apply(&response).expect("sync applies");
        }
        if round > 1 {
            rule_changes += changes;
            epoch_advance_total += started.elapsed();
        }
    }
    let reverify = server.reverify_stats();

    // Selection micro-benchmark: same region, same registered population,
    // linear scan versus index lookup.
    let region = IncrementalModel::new(topology.clone()).apply(&probe_changes(topology));
    let mut index = InterestIndex::new(topology.clone());
    let mut population: Vec<(ClientId, QuerySpec)> = Vec::with_capacity(standing_queries);
    for client in &clients {
        for spec in &mix {
            population.push((*client, spec.clone()));
        }
    }
    population.extend(synthetic.iter().cloned());
    for (client, spec) in &population {
        index.register(*client, spec);
    }
    let probes = config.selection_probes.max(1);
    let started = Instant::now();
    for _ in 0..probes {
        std::hint::black_box(index.affected(&region));
    }
    let indexed_selection_avg = started.elapsed() / probes as u32;
    let started = Instant::now();
    for _ in 0..probes {
        for (client, spec) in &population {
            std::hint::black_box(query_affected(topology, *client, spec, &region));
        }
    }
    let linear_selection_avg = started.elapsed() / probes as u32;

    QueryScaleReport {
        standing_queries,
        rounds: config.rounds,
        rule_changes,
        epoch_advance_total,
        epoch_advance_avg: epoch_advance_total / config.rounds.max(1) as u32,
        reverified: reverify.reverified,
        skipped: reverify.skipped,
        indexed_selection_avg,
        linear_selection_avg,
        final_serial: service.current_serial(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvaas_topology::generators;

    #[test]
    fn synthetic_population_is_distinct_and_spread() {
        let clients = vec![ClientId(1), ClientId(2)];
        let queries = synthetic_queries(&clients, 6);
        assert_eq!(queries.len(), 6);
        let distinct: std::collections::BTreeSet<_> = queries.iter().collect();
        assert_eq!(distinct.len(), 6, "every synthetic spec is unique");
        assert_eq!(queries.iter().filter(|(c, _)| *c == ClientId(1)).count(), 3);
    }

    #[test]
    fn reverification_tracks_churn_not_population() {
        let topology = generators::leaf_spine(2, 4, 4, 1);
        let config = QueryScaleConfig {
            workers: 1,
            synthetic_queries: 200,
            rounds: 3,
            churn_clients_per_round: 1,
            rules_per_client: 2,
            selection_probes: 1,
        };
        let report = run_query_scale(&topology, &config);
        assert_eq!(report.standing_queries, 4 * 6 + 200);
        assert!(report.rule_changes > 0);
        assert_eq!(report.final_serial, 5, "initial + warmup + measured rounds");
        // The synthetic population never re-verifies: its interests are
        // pinned to destinations the tenant churn cannot touch. Only the
        // churned clients' standard mix shows up in the deltas.
        assert!(
            report.reverified <= (report.rounds as u64 + 1) * 2 * 6,
            "reverification must track churn, not population: {report:?}"
        );
        assert!(
            report.skipped > report.reverified * 10,
            "the synthetic population must be skipped wholesale: {report:?}"
        );
        assert!(report.indexed_selection_avg > Duration::ZERO);
        assert!(report.linear_selection_avg > Duration::ZERO);
    }
}
