//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace uses the serde derives purely as in-memory markers; nothing
//! ever calls serde's (de)serialization machinery — the wire format is the
//! hand-written codec in `rvaas-client`. This proc-macro crate accepts the
//! derive attributes and expands to nothing, which keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling without
//! registry access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
