//! Minimal, deterministic stand-in for the `rand` API surface used by the
//! workspace: seeded [`rngs::StdRng`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The generator is splitmix64 — statistically fine for simulation jitter
//! and shuffles, deliberately not cryptographic (nothing here needs it).

use std::ops::{Range, RangeInclusive};

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range a value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the same construction real rand uses.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn uniform_u64_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

macro_rules! signed_ranges {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

signed_ranges!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic seeded generator, mirroring `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Pre-mix so adjacent seeds do not produce correlated streams.
                state: seed ^ 0x51ab_de3f_9c6a_7e01,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_u64_below, Rng};

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_u64_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_hits() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
