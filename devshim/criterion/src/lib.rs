//! Minimal, wall-clock stand-in for the slice of `criterion` this workspace
//! uses: [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark runs a short warm-up followed by a fixed number of timed
//! iterations and prints mean / min time per iteration (plus element
//! throughput when declared). There is no statistical analysis or HTML
//! report — just enough to run `cargo bench` offline and eyeball trends.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter, mirroring
    /// `criterion::BenchmarkId::from_parameter`.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    #[must_use]
    pub fn new<S: Display, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Declared per-iteration workload size, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs the measured closure, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            total: Duration::ZERO,
            min: Duration::MAX,
        }
    }

    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
        }
    }
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 || bencher.total.is_zero() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean = bencher.total / u32::try_from(bencher.iters).unwrap_or(u32::MAX);
    let mut line = format!(
        "{name:<48} mean {:>12}   min {:>12}",
        fmt_duration(mean),
        fmt_duration(bencher.min)
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let per_sec = n as f64 / mean.as_secs_f64();
        line.push_str(&format!("   {per_sec:>12.0} elem/s"));
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        let per_sec = n as f64 / mean.as_secs_f64();
        line.push_str(&format!("   {per_sec:>12.0} B/s"));
    }
    println!("{line}");
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size as u64);
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = self.sample_size.unwrap_or(20) as u64;
        let mut bencher = Bencher::new(iters);
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let iters = self.sample_size.unwrap_or(20) as u64;
        let mut bencher = Bencher::new(iters);
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op marker).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_runs_with_input_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(42u32), &5u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert!(total >= 5);
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
    }
}
