//! Minimal, deterministic stand-in for the slice of `proptest` this
//! workspace uses: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each property runs a fixed number of deterministically generated
//! cases (seeded from the test name), and failures panic via the standard
//! `assert!` family, so `cargo test` reports them like any other test.

/// Deterministic case generation.
pub mod test_runner {
    /// Number of cases each property runs by default.
    pub const CASES: u64 = 64;

    /// Per-block configuration, mirroring `proptest::test_runner::Config`
    /// under its `ProptestConfig` prelude alias.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property in the block runs.
        pub cases: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: CASES }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u64) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The deterministic generator feeding strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from the property's name, so every property
        /// gets an independent but reproducible stream.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value below `bound` (rejection-sampled).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// The strategy returned by [`any`](crate::prelude::any).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector strategy with element strategy `element` and a length drawn
    /// from `size`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes an
/// ordinary `#[test]` running a fixed number of deterministic cases
/// (configurable with a leading `#![proptest_config(..)]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_with_config! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_with_config! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_with_config {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut __proptest_rng =
                $crate::test_runner::TestRng::for_test(stringify!($name));
            let __proptest_cases: u64 = ($config).cases;
            for __proptest_case in 0..__proptest_cases {
                let _ = __proptest_case;
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng),)+
                );
                $body
            }
        }
    )*};
}

/// Asserts a property-test condition (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality in a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality in a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn map_and_vec_compose(v in collection::vec(any::<u8>(), 1..16),
                               w in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(w <= 6);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }
}
